package distserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"bat/internal/admission"
	"bat/internal/bipartite"
	"bat/internal/costmodel"
	"bat/internal/metrics"
	"bat/internal/model"
	"bat/internal/ranking"
	"bat/internal/routing"
	"bat/internal/scheduler"
	"bat/internal/serving"
)

// ErrValidation marks request errors the caller can fix (unknown IDs, empty
// candidate sets); everything else is an internal serving failure. It is the
// shared serving core's sentinel, re-exported under its historical name.
var ErrValidation = serving.ErrValidation

// RankRequest / RankResponse are the shared serving types; aliased so the
// frontend API keeps its historical names and stays wire-identical to the
// single-process server.
type (
	RankRequest  = serving.RankRequest
	RankResponse = serving.RankResponse
)

// FrontendConfig wires an inference frontend to its cluster.
type FrontendConfig struct {
	Dataset *ranking.Dataset
	Variant ranking.ModelVariant
	// MetaURL is the cache meta service's base URL.
	MetaURL string
	// CacheWorkers are the cache workers' base URLs; slice index is the
	// worker ID used with the meta service.
	CacheWorkers []string
	// Policy decides each request's attention pattern (default hotness-aware).
	Policy scheduler.Policy
	// TopK is the returned ranking length (default 10).
	TopK int
	// Client issues the HTTP calls. Defaults to a client bounded by
	// Transfer.Timeout — never a timeout-less http.DefaultClient, so a hung
	// cache worker cannot wedge requests.
	Client *http.Client
	// Transfer tunes the fault-tolerant transfer engine (timeouts, retries,
	// circuit breakers, fetch parallelism). Zero value = defaults.
	Transfer TransferConfig
	// Admission tunes the overload ladder (in-flight bound, wait queue,
	// default deadline, degrade threshold). Zero value = defaults.
	Admission admission.Config
	// DegradedMaxCandidates caps the candidate set served in degraded mode
	// (default 16).
	DegradedMaxCandidates int
	// GPU selects the costmodel device whose fitted prefill estimator
	// anchors the deadline gate (default A100-PCIe4). The estimator's shape
	// prediction is calibrated online against observed wall clock, so only
	// its relative form matters.
	GPU costmodel.GPU
	// BatchWindow, WindowPolicy, and MaxBatch tune the serving core's
	// batch-forming loop (see serving.Config); zero values take the core
	// defaults (adaptive window).
	BatchWindow  time.Duration
	WindowPolicy string
	MaxBatch     int
	// TraceRing sizes the retained request-trace ring served at
	// GET /debug/trace (default 128).
	TraceRing int
	// Replication is how many distinct live workers each fresh cache is
	// written to (clamped to the pool size; 0 or 1 = single copy, the
	// pre-replication behavior). The first replica rides the write-behind
	// queue as before; the extras are tagged secondary copies on the same
	// queue, all registered in meta.
	Replication int
	// ReadRepairBudget caps background read-repair backfills per second
	// (0 = default 16; negative disables read repair).
	ReadRepairBudget int
	// CloseFlushTimeout bounds Close()'s drain of queued write-behind stores
	// (0 = default 2s; negative = abandon the queue immediately, the
	// pre-flush behavior).
	CloseFlushTimeout time.Duration
	// LoadSummaryTTL is how long /v1/load serves a cached user-residency
	// summary before re-polling the workers (0 = default 1s; negative =
	// refresh on every request, for tests).
	LoadSummaryTTL time.Duration
	// BatchHook, when non-nil, runs before each batch executes (tests).
	BatchHook func(size int)
}

// Frontend is the inference worker + prompt scheduler of Figure 3: it owns
// the model replica, consults the meta service, moves KV payloads to and
// from cache workers through the fault-tolerant transfer engine, and
// executes Bipartite Attention. The request lifecycle (validate → admit →
// batch → execute → respond) lives in the shared serving core; the frontend
// is its network-cache backend: plans fetch caches from the pool, commits
// write fresh ones back at batch boundaries.
type Frontend struct {
	cfg      FrontendConfig
	ranker   *ranking.Ranker
	transfer *transferClient
	est      *costmodel.Estimator
	core     *serving.Core
	// ring shards entries across the cache workers (the shared consistent
	// walk from internal/routing; liveness comes from alive/draining).
	ring routing.Ring

	// flight coalesces concurrent fetches of the same item cache: the first
	// request becomes the leader and issues the network fetch; followers wait
	// for its result instead of issuing N identical GETs.
	flightMu sync.Mutex
	flight   map[uint64]*flightCall

	// fetchCtr counts pool round trips by outcome under
	// bat_fetch_total{outcome=...} in the core's metric registry.
	fetchCtr map[string]*metrics.Counter
	// bytesCtr counts transfer payload bytes under
	// bat_transfer_bytes_total{dir,kind,mode}: rx = streaming fetches,
	// tx = stores; mode "delta" marks suffix-only PATCH appends.
	bytesCtr       map[string]*metrics.Counter
	deltaStores    *metrics.Counter
	deltaFallbacks *metrics.Counter
	storeDrops     *metrics.Counter
	storeCoalesced *metrics.Counter
	streamFetches  *metrics.Counter
	readRepairs    *metrics.Counter
	closeDrops     *metrics.Counter
	drainsCtr      *metrics.Counter
	// hedgedCtr counts issued hedge races by winner under
	// bat_hedged_fetches_total{outcome="primary"|"hedged"|"miss"};
	// replicaStores counts queued store copies by role under
	// bat_replica_stores_total{role="primary"|"secondary"}.
	hedgedCtr     map[string]*metrics.Counter
	replicaStores map[string]*metrics.Counter

	// loadMu guards the /v1/load residency summary cache (see load.go).
	loadMu      sync.Mutex
	loadSummary *routing.Summary
	loadUsers   int
	loadAt      time.Time

	// repairMu guards the read-repair token window (repairs admitted in the
	// current one-second window).
	repairMu     sync.Mutex
	repairWindow time.Time
	repairCount  int

	// stored remembers, per cache key, which worker last accepted the entry
	// and at how many tokens — the prefix knowledge that lets the next store
	// of the same key ship only the suffix as a PATCH delta.
	storedMu sync.Mutex
	stored   map[string]storedPrefix

	// Write-behind store queue: Commit enqueues fresh caches here and the
	// storeLoop workers upload them off the batch-serial critical path. The
	// queue coalesces per key (latest cache wins) and drops on overflow
	// (counted) rather than stalling a batch boundary. storeCtx is
	// frontend-owned — request contexts are canceled the moment their
	// response goes out, which is exactly when these stores run.
	storeCtx     context.Context
	storeCancel  context.CancelFunc
	storeMu      sync.Mutex
	storeCond    *sync.Cond
	storePending map[string]*storeJob
	storeActive  int
	storeCh      chan string
	storeWG      sync.WaitGroup

	mu               sync.Mutex
	fetchErrors      int64
	failovers        int64
	staleUnregisters int64
	coalescedFetches int64
	prefetchedPlans  int64
	workerPurges     int64
	purgedBindings   int64
	// calibRatio is the EWMA of observed-seconds / estimator-predicted
	// seconds; 0 until the first full request completes, which disables the
	// deadline gate cold (never shed on an uncalibrated estimate).
	calibRatio float64
	// alive[w] routes cache writes away from workers the poolguard marked
	// dead; all true at start. draining[w] does the same for workers mid
	// graceful drain — they still serve reads but refuse stores.
	alive    []bool
	draining []bool
	// lastPurge rate-limits breaker-open worker-granularity meta purges.
	lastPurge []time.Time
	guard     *PoolGuard
}

// storedPrefix is the frontend's record of a worker-resident entry: the delta
// store path may PATCH-append to it instead of re-uploading the whole cache.
type storedPrefix struct {
	worker int
	tokens int
}

// storeJob is one queued write-behind store.
type storeJob struct {
	worker int
	kind   string
	id     uint64
	c      *model.KVCache
}

// maxStoredPrefixes bounds the delta-tracking map; when full it resets (the
// only cost is full PUTs until it repopulates).
const maxStoredPrefixes = 8192

// Replication-layer defaults.
const (
	// defaultCloseFlushTimeout bounds how long Close waits for queued
	// write-behind stores before dropping them.
	defaultCloseFlushTimeout = 2 * time.Second
	// defaultReadRepairBudget is the per-second cap on background replica
	// backfills triggered by degraded reads.
	defaultReadRepairBudget = 16
	// defaultHedgeQuantile is the fetch-stage latency quantile whose observed
	// value arms the hedged-read timer.
	defaultHedgeQuantile = 0.99
	// minHedgeDelay floors the hedge timer so a momentarily empty histogram
	// bucket cannot make every fetch issue two RPCs.
	minHedgeDelay = 500 * time.Microsecond
)

// NewFrontend builds a frontend.
func NewFrontend(cfg FrontendConfig) (*Frontend, error) {
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("distserve: nil dataset")
	}
	if cfg.MetaURL == "" || len(cfg.CacheWorkers) == 0 {
		return nil, fmt.Errorf("distserve: frontend needs a meta URL and at least one cache worker")
	}
	if cfg.Policy == nil {
		cfg.Policy = scheduler.HotnessAware{}
	}
	cfg.Transfer = cfg.Transfer.withDefaults()
	if cfg.Client == nil {
		// http.DefaultClient has no Timeout; a single hung worker would
		// stall /v1/rank forever. Bound every call even when the transfer
		// engine's per-attempt deadline is somehow bypassed.
		cfg.Client = &http.Client{Timeout: cfg.Transfer.Timeout}
	}
	if cfg.GPU.TFLOPS == 0 {
		cfg.GPU = costmodel.A100PCIe4
	}
	r, err := ranking.NewRanker(cfg.Dataset, cfg.Variant)
	if err != nil {
		return nil, err
	}
	retr, err := ranking.NewRetriever(cfg.Dataset, 0.9)
	if err != nil {
		return nil, err
	}
	est, err := costmodel.FitEstimator(cfg.GPU, r.W.Config())
	if err != nil {
		return nil, err
	}
	f := &Frontend{
		cfg:    cfg,
		ranker: r,
		est:    est,
		ring:   routing.NewRing(len(cfg.CacheWorkers)),
		flight: make(map[uint64]*flightCall),
		alive:  make([]bool, len(cfg.CacheWorkers)),
	}
	for i := range f.alive {
		f.alive[i] = true
	}
	f.draining = make([]bool, len(cfg.CacheWorkers))
	f.lastPurge = make([]time.Time, len(cfg.CacheWorkers))
	f.transfer = newTransferClient(cfg.Client, cfg.Transfer, len(cfg.CacheWorkers))
	core, err := serving.NewCore(serving.Config{
		Dataset:               cfg.Dataset,
		Ranker:                r,
		Retriever:             retr,
		TopK:                  cfg.TopK,
		DegradedMaxCandidates: cfg.DegradedMaxCandidates,
		Admission:             cfg.Admission,
		BatchWindow:           cfg.BatchWindow,
		WindowPolicy:          cfg.WindowPolicy,
		MaxBatch:              cfg.MaxBatch,
		TraceRing:             cfg.TraceRing,
		BatchHook:             cfg.BatchHook,
		Ladder:                f.ladder,
	}, f)
	if err != nil {
		return nil, err
	}
	f.core = core
	reg := core.Observer().Registry()
	f.fetchCtr = make(map[string]*metrics.Counter, len(fetchOutcomes))
	for _, o := range fetchOutcomes {
		f.fetchCtr[o] = reg.Counter(`bat_fetch_total{outcome="` + o + `"}`)
	}
	f.bytesCtr = make(map[string]*metrics.Counter, 8)
	for _, dir := range []string{"rx", "tx"} {
		for _, kind := range []string{"user", "item"} {
			for _, mode := range []string{"full", "delta"} {
				f.bytesCtr[dir+"/"+kind+"/"+mode] = reg.Counter(
					`bat_transfer_bytes_total{dir="` + dir + `",kind="` + kind + `",mode="` + mode + `"}`)
			}
		}
	}
	f.deltaStores = reg.Counter("bat_delta_stores_total")
	f.deltaFallbacks = reg.Counter("bat_delta_fallbacks_total")
	f.storeDrops = reg.Counter("bat_store_drops_total")
	f.storeCoalesced = reg.Counter("bat_store_coalesced_total")
	f.streamFetches = reg.Counter("bat_stream_fetches_total")
	f.readRepairs = reg.Counter("bat_read_repairs_total")
	f.closeDrops = reg.Counter("bat_close_dropped_stores_total")
	f.drainsCtr = reg.Counter("bat_drains_total")
	f.hedgedCtr = make(map[string]*metrics.Counter, 3)
	for _, o := range []string{"primary", "hedged", "miss"} {
		f.hedgedCtr[o] = reg.Counter(`bat_hedged_fetches_total{outcome="` + o + `"}`)
	}
	f.replicaStores = make(map[string]*metrics.Counter, 2)
	for _, role := range []string{"primary", "secondary"} {
		f.replicaStores[role] = reg.Counter(`bat_replica_stores_total{role="` + role + `"}`)
	}
	f.stored = make(map[string]storedPrefix)
	f.storeCtx, f.storeCancel = context.WithCancel(context.Background())
	if cfg.Transfer.StoreQueueDepth > 0 {
		f.storePending = make(map[string]*storeJob)
		f.storeCh = make(chan string, cfg.Transfer.StoreQueueDepth)
		f.storeCond = sync.NewCond(&f.storeMu)
		reg.GaugeFunc("bat_store_queue_depth", func() float64 {
			f.storeMu.Lock()
			defer f.storeMu.Unlock()
			return float64(len(f.storePending) + f.storeActive)
		})
		for i := 0; i < cfg.Transfer.StoreWorkers; i++ {
			f.storeWG.Add(1)
			go f.storeLoop()
		}
	}
	for i := range cfg.CacheWorkers {
		ts := f.transfer.targets[i]
		reg.GaugeFunc(`bat_worker_breaker_open{worker="`+strconv.Itoa(i)+`"}`, func() float64 {
			ts.mu.Lock()
			defer ts.mu.Unlock()
			if ts.state == breakerOpen {
				return 1
			}
			return 0
		})
	}
	return f, nil
}

// Fetch-span / bat_fetch_total outcomes. "coalesced" marks a fetch answered
// by another request's in-flight GET; the rest are the leader's round-trip
// results.
var fetchOutcomes = []string{"hit", "miss", "breaker-open", "error", "decode-error", "coalesced"}

// Observer exposes the serving core's observability state (registry, stage
// histograms, trace ring) so tests and the batdist binary can reach it.
func (f *Frontend) Observer() *serving.Observer { return f.core.Observer() }

// observeFetch settles one pool round trip into the outcome counters and —
// when the request is traced — a nested StageFetch span tagged with the
// worker, entry kind, outcome, and retry count.
func (f *Frontend) observeFetch(ctx context.Context, worker int, kind, outcome string, tries int, start time.Time) {
	if c, ok := f.fetchCtr[outcome]; ok {
		c.Inc()
	}
	// Completed round trips calibrate the fetch-stage histogram that arms
	// hedged replica reads. Fed here (not from the trace fold, which skips
	// nested fetch spans) so untraced requests calibrate too; breaker-open
	// short-circuits and coalesced waits would skew the quantile.
	if outcome == "hit" || outcome == "miss" {
		f.core.Observer().ObserveStage(serving.StageFetch, time.Since(start))
	}
	tb := serving.TraceFromContext(ctx)
	if tb == nil {
		return
	}
	attrs := map[string]string{
		"worker":  strconv.Itoa(worker),
		"kind":    kind,
		"outcome": outcome,
	}
	if tries > 1 {
		attrs["retries"] = strconv.Itoa(tries - 1)
	}
	tb.AddSpan(serving.StageFetch, start, time.Since(start), attrs)
}

// Close stops the serving core's batch loop, then drains the write-behind
// store queue for up to CloseFlushTimeout before stopping the store workers,
// so caches committed just before shutdown reach the pool instead of being
// silently abandoned. Stores still unfinished when the timeout expires are
// dropped and counted under bat_close_dropped_stores_total.
func (f *Frontend) Close() {
	f.core.Close()
	timeout := f.cfg.CloseFlushTimeout
	if timeout == 0 {
		timeout = defaultCloseFlushTimeout
	}
	if f.storeCh != nil {
		if timeout > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			f.FlushStores(ctx)
			cancel()
		}
		f.storeMu.Lock()
		if rem := len(f.storePending) + f.storeActive; rem > 0 {
			f.closeDrops.Add(int64(rem))
		}
		f.storeMu.Unlock()
	}
	f.storeCancel()
	f.storeWG.Wait()
	if f.storeCond != nil {
		f.storeMu.Lock()
		f.storeCond.Broadcast()
		f.storeMu.Unlock()
	}
}

// replication is the effective replication factor: the configured RF clamped
// to [1, pool size].
func (f *Frontend) replication() int {
	rf := f.cfg.Replication
	if rf < 1 {
		rf = 1
	}
	if n := len(f.cfg.CacheWorkers); rf > n {
		rf = n
	}
	return rf
}

// userWorker and itemWorker shard entries across cache workers, routing
// around workers the poolguard marked dead or an operator is draining; the
// *Replicas variants return the full RF-wide replica set for the same hash.
func (f *Frontend) userWorker(u int) int {
	return f.replicaWorkers(routing.EntryHash("user", uint64(u)), 1)[0]
}

func (f *Frontend) itemWorker(i int) int {
	return f.replicaWorkers(routing.EntryHash("item", uint64(i)), 1)[0]
}

func (f *Frontend) userReplicas(u int) []int {
	return f.replicaWorkers(routing.EntryHash("user", uint64(u)), f.replication())
}

func (f *Frontend) itemReplicas(i int) []int {
	return f.replicaWorkers(routing.EntryHash("item", uint64(i)), f.replication())
}

// replicaWorkers maps a shard hash to up to rf distinct live, non-draining
// workers via the shared routing ring's walk-forward selection (staying home
// when the whole pool is unroutable — the store will fail harmlessly).
func (f *Frontend) replicaWorkers(h uint64, rf int) []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring.Replicas(h, rf, func(w int) bool { return f.alive[w] && !f.draining[w] })
}

// SetWorkerAlive marks a cache worker live or dead for write routing. The
// poolguard flips it on death and rejoin; reads are unaffected (locations
// come from the meta service, which the poolguard purges separately). A death
// also forgets the worker's delta prefixes — its content is presumed gone, so
// the next store of each key ships a full PUT (the checksum guard would catch
// a stale prefix anyway; this just skips the doomed PATCH round trip).
func (f *Frontend) SetWorkerAlive(worker int, alive bool) {
	if worker < 0 || worker >= len(f.cfg.CacheWorkers) {
		return
	}
	f.mu.Lock()
	f.alive[worker] = alive
	f.mu.Unlock()
	if !alive {
		f.forgetWorkerPrefixes(worker)
	}
}

// Rank serves one request end to end through the serving core and the
// disaggregated pool. The context bounds every transfer the request issues;
// cache fetch failures degrade to recompute, never to request failure.
func (f *Frontend) Rank(ctx context.Context, req RankRequest) (*RankResponse, error) {
	return f.core.RankCtx(ctx, req)
}

// distPlan is the backend-private Plan→Commit state: the calibration window
// opens at plan time so observed wall clock covers meta round trips and
// cache fetches, not just the model forward.
type distPlan struct {
	started                time.Time
	userTokens, itemTokens int
}

// prefetchState is one request's in-flight background plan: the goroutine
// Prefetch spawned fills plan/err, then closes done.
type prefetchState struct {
	done chan struct{}
	plan *serving.Plan
	err  error
}

// Prefetch implements serving.Prefetcher: the request's meta round trips and
// pool cache fetches start at enqueue time, on their own goroutine, so
// network transfer hides under the queue/window residency and the previous
// batch's compute instead of serializing at the head of the plan phase. The
// work is identical to Plan's — only the clock it overlaps changes. The
// calibration window therefore opens at enqueue, which is also the honest
// budget for the deadline gate (a queued request's fetches consume its
// deadline whether or not a batch has formed yet).
func (f *Frontend) Prefetch(ctx context.Context, req serving.RankRequest) any {
	ps := &prefetchState{done: make(chan struct{})}
	go func() {
		defer close(ps.done)
		ps.plan, ps.err = f.plan(ctx, req)
	}()
	return ps
}

// Plan is the serving core's scheduling callback. When the core started a
// prefetch for this request, Plan just awaits it (the transfer usually
// finished during the batch window — the whole point); otherwise it runs the
// same work inline. Everything touched is immutable, internally locked, or
// request-private, so concurrent plans are safe.
func (f *Frontend) Plan(ctx context.Context, req serving.RankRequest) (*serving.Plan, error) {
	if ps, ok := serving.PrefetchHandle(ctx).(*prefetchState); ok {
		select {
		case <-ps.done:
			f.mu.Lock()
			f.prefetchedPlans++
			f.mu.Unlock()
			return ps.plan, ps.err
		case <-ctx.Done():
			return nil, fmt.Errorf("distserve: request canceled: %w", ctx.Err())
		}
	}
	return f.plan(ctx, req)
}

// plan records hotness, decides the prefix organization, and fetches whatever
// caches the pool holds.
func (f *Frontend) plan(ctx context.Context, req serving.RankRequest) (*serving.Plan, error) {
	ds := f.cfg.Dataset
	started := time.Now()

	hotness := f.metaAccess(ctx, "user", uint64(req.UserID))
	f.metaAccessBatch(ctx, req.CandidateIDs)
	userTokens := len(ds.UserHistory[req.UserID])
	itemTokens := 0
	for _, it := range req.CandidateIDs {
		itemTokens += len(ds.ItemTokens[it])
	}
	userLocs := f.metaLocate(ctx, "user", uint64(req.UserID))
	dec := f.cfg.Policy.Decide(scheduler.Context{
		UserTokens:  userTokens,
		ItemTokens:  itemTokens,
		UserHotness: hotness,
		UserCached:  len(userLocs) > 0,
		// The disaggregated pool evicts internally; the frontend treats it
		// as always admitting (cache workers apply their own budgets).
		UserPoolHasSpace: true,
	})

	plan := &serving.Plan{
		Kind: dec.Kind, Recompute: dec.Recompute, AdmitUser: dec.AdmitUser,
		Aux: &distPlan{started: started, userTokens: userTokens, itemTokens: itemTokens},
	}
	if dec.Recompute {
		plan.Kind = bipartite.UserPrefix
	}
	if !dec.Recompute {
		if plan.Kind == bipartite.UserPrefix && len(userLocs) > 0 {
			plan.Caches.User = f.fetchReplicated(ctx, "user", uint64(req.UserID), userLocs)
		}
		if plan.Kind == bipartite.ItemPrefix {
			plan.Caches.Items = f.fetchItemCaches(ctx, req.CandidateIDs)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("distserve: request canceled: %w", err)
	}
	return plan, nil
}

// Commit runs serially at each batch boundary: fold every served request
// into the cost-model calibration, then hand freshly computed caches to the
// write-behind store queue (the scheduler's cache write path). Uploads run
// asynchronously so batch N+1's execute is not gated on batch N's stores;
// FlushStores is the determinism hook for callers that need the pool in its
// post-commit state.
func (f *Frontend) Commit(entries []serving.CommitEntry) {
	// A batch that carried the same miss in several requests computed one
	// forward and handed out bit-identical clones; write each (kind, id)
	// back to the pool once, not once per request.
	type storeKey struct {
		user bool
		id   uint64
	}
	stored := make(map[storeKey]bool)
	for _, e := range entries {
		if aux, ok := e.Plan.Aux.(*distPlan); ok {
			f.calibrate(aux.userTokens+aux.itemTokens+2, time.Since(aux.started).Seconds())
		}
		if e.Plan.Recompute {
			continue
		}
		if e.Run.NewUserCache != nil && e.Plan.AdmitUser {
			k := storeKey{user: true, id: uint64(e.Req.UserID)}
			if !stored[k] {
				stored[k] = true
				f.queueStoreReplicas("user", k.id, e.Run.NewUserCache, f.userReplicas(e.Req.UserID))
			}
		}
		for slot, c := range e.Run.NewItemCaches {
			it := e.Req.CandidateIDs[slot]
			k := storeKey{id: uint64(it)}
			if !stored[k] {
				stored[k] = true
				f.queueStoreReplicas("item", k.id, c, f.itemReplicas(it))
			}
		}
	}
}

// ladder adds the frontend's plane-specific overload rungs after the core's
// queue-pressure check: degrade when the pool is mostly breaker-open or the
// remaining deadline cannot cover the estimated full serve, shed when the
// deadline is already gone.
func (f *Frontend) ladder(ctx context.Context, req serving.RankRequest) (mode, reason string) {
	if n := len(f.cfg.CacheWorkers); n > 0 && f.transfer.openWorkerBreakers()*2 >= n {
		return serving.ModeDegraded, "pool-unhealthy"
	}
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl).Seconds()
		if remaining <= 0 {
			return serving.ModeShed, admission.ReasonDeadline
		}
		ds := f.cfg.Dataset
		userTokens := 0
		if req.UserID >= 0 && req.UserID < len(ds.UserHistory) {
			userTokens = len(ds.UserHistory[req.UserID])
		}
		itemTokens := 0
		for _, it := range req.CandidateIDs {
			if it >= 0 && it < len(ds.ItemTokens) {
				itemTokens += len(ds.ItemTokens[it])
			}
		}
		if est := f.estimateFullSeconds(userTokens, itemTokens); est > remaining {
			return serving.ModeDegraded, admission.ReasonDeadline
		}
	}
	return serving.ModeFull, ""
}

// metaAccess records an access; network failures degrade to cold (0).
func (f *Frontend) metaAccess(ctx context.Context, kind string, id uint64) float64 {
	body, err := json.Marshal(EntryRef{Kind: kind, ID: id})
	if err != nil {
		return 0
	}
	status, respBody, err := f.transfer.send(ctx, f.transfer.metaTarget(), http.MethodPost,
		f.cfg.MetaURL+"/v1/access", "application/json", body)
	if err != nil {
		f.noteFetchError()
		return 0
	}
	var out AccessResponse
	if status != http.StatusOK || json.Unmarshal(respBody, &out) != nil {
		return 0
	}
	return out.Hotness
}

// metaAccessBatch records the whole candidate set's item accesses in one
// round trip, keeping item hotness live in the meta service — the signal the
// poolguard's repair path ranks by. Failures are silent (hotness is advisory).
func (f *Frontend) metaAccessBatch(ctx context.Context, items []int) {
	if len(items) == 0 {
		return
	}
	refs := make([]EntryRef, len(items))
	for i, it := range items {
		refs[i] = EntryRef{Kind: "item", ID: uint64(it)}
	}
	body, err := json.Marshal(AccessBatchRequest{Entries: refs})
	if err != nil {
		return
	}
	f.transfer.send(ctx, f.transfer.metaTarget(), http.MethodPost,
		f.cfg.MetaURL+"/v1/access_batch", "application/json", body)
}

// calibrate folds one full request's observed seconds into the EWMA ratio
// that scales the offline estimator to real wall clock (fetch and transfer
// time included). Until the first observation the ratio stays 0 and the
// deadline gate never sheds.
func (f *Frontend) calibrate(tokens int, observed float64) {
	pred := f.est.Predict(tokens, 0)
	if pred <= 0 || observed <= 0 {
		return
	}
	ratio := observed / pred
	f.mu.Lock()
	if f.calibRatio == 0 {
		f.calibRatio = ratio
	} else {
		f.calibRatio = 0.7*f.calibRatio + 0.3*ratio
	}
	f.mu.Unlock()
}

// estimateFullSeconds predicts the wall clock a full (non-degraded) serve of
// this shape would take: the estimator's worst-case recompute prediction
// scaled by the observed calibration ratio. Returns 0 while uncalibrated so
// the deadline gate stays open cold.
func (f *Frontend) estimateFullSeconds(userTokens, itemTokens int) float64 {
	f.mu.Lock()
	ratio := f.calibRatio
	f.mu.Unlock()
	if ratio == 0 {
		return 0
	}
	return ratio * f.est.Predict(userTokens+itemTokens+2, 0)
}

// unregisterWorker bulk-purges one worker's meta bindings and returns the
// hottest purged entries for re-replication. Used by the poolguard on worker
// death and by the breaker-open stale-cleanup path.
func (f *Frontend) unregisterWorker(ctx context.Context, worker, hotLimit int) (*UnregisterWorkerResponse, error) {
	body, err := json.Marshal(UnregisterWorkerRequest{Worker: worker, HotLimit: hotLimit})
	if err != nil {
		return nil, err
	}
	status, respBody, err := f.transfer.send(ctx, f.transfer.metaTarget(), http.MethodPost,
		f.cfg.MetaURL+"/v1/unregister_worker", "application/json", body)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("distserve: unregister_worker returned status %d", status)
	}
	var out UnregisterWorkerResponse
	if err := json.Unmarshal(respBody, &out); err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.workerPurges++
	f.purgedBindings += int64(out.Removed)
	f.mu.Unlock()
	return &out, nil
}

// maybePurgeWorker runs the worker-granularity stale cleanup when a fetch
// hits an open breaker: instead of per-key 404 unregisters (which never
// happen while the breaker short-circuits fetches), drop every binding the
// dead worker holds so metaLocate stops steering requests at it. Rate-limited
// per worker to one purge per breaker cooldown.
func (f *Frontend) maybePurgeWorker(ctx context.Context, worker int) {
	if worker < 0 || worker >= len(f.lastPurge) {
		return
	}
	now := time.Now()
	f.mu.Lock()
	if now.Sub(f.lastPurge[worker]) < f.cfg.Transfer.BreakerCooldown {
		f.mu.Unlock()
		return
	}
	f.lastPurge[worker] = now
	f.mu.Unlock()
	f.unregisterWorker(ctx, worker, 0)
}

// metaLocate resolves an entry's workers; failures degrade to "not cached".
func (f *Frontend) metaLocate(ctx context.Context, kind string, id uint64) []int {
	u := fmt.Sprintf("%s/v1/locate?kind=%s&id=%d", f.cfg.MetaURL, url.QueryEscape(kind), id)
	status, body, _, err := f.transfer.get(ctx, f.transfer.metaTarget(), u)
	if err != nil {
		f.noteFetchError()
		return nil
	}
	if status != http.StatusOK {
		return nil
	}
	var out LocateResponse
	if json.Unmarshal(body, &out) != nil {
		return nil
	}
	return out.Workers
}

// metaUnregister drops a stale location binding after a worker miss, so
// metaLocate (and the hotness-aware policy's UserCached signal) stops
// reporting entries the pool has already evicted. Only unregisters that
// removed a live binding count as stale cleanups — a cold miss on a
// never-registered entry is a no-op, not staleness.
func (f *Frontend) metaUnregister(ctx context.Context, kind string, id uint64, worker int) {
	body, err := json.Marshal(RegisterRequest{EntryRef: EntryRef{Kind: kind, ID: id}, Worker: worker})
	if err != nil {
		return
	}
	_, respBody, err := f.transfer.send(ctx, f.transfer.metaTarget(), http.MethodPost,
		f.cfg.MetaURL+"/v1/unregister", "application/json", body)
	if err != nil {
		return
	}
	var out UnregisterResponse
	if json.Unmarshal(respBody, &out) == nil && out.Removed {
		f.mu.Lock()
		f.staleUnregisters++
		f.mu.Unlock()
	}
}

// fetchReplicated serves one entry from its replica set: with a single
// location it is a plain fetch; with more it either races a hedged second
// fetch against a slow first replica (when the fetch-stage histogram has
// calibrated a delay) or walks the locations in order, failing over past
// dead or evicted replicas. Degraded reads — a failover, or fewer locations
// than the replication factor — queue a background read-repair backfill.
func (f *Frontend) fetchReplicated(ctx context.Context, kind string, id uint64, locs []int) *model.KVCache {
	if len(locs) == 0 {
		return nil
	}
	if len(locs) > 1 {
		if d := f.hedgeDelay(); d > 0 {
			return f.fetchHedged(ctx, kind, id, locs, d)
		}
	}
	for i, loc := range locs {
		if c := f.fetchCache(ctx, loc, kind, id); c != nil {
			f.settleReplicaFetch(kind, id, c, loc, i > 0, len(locs))
			return c
		}
	}
	return nil
}

// settleReplicaFetch accounts a successful replica fetch: a read that walked
// past a failed replica is a failover, and any read that saw fewer locations
// than the replication factor (or a failed one) triggers read repair.
func (f *Frontend) settleReplicaFetch(kind string, id uint64, c *model.KVCache, src int, failedOver bool, locCount int) {
	if failedOver {
		f.mu.Lock()
		f.failovers++
		f.mu.Unlock()
	}
	if failedOver || locCount < f.replication() {
		f.maybeReadRepair(kind, id, c, src)
	}
}

// hedgeDelay derives the hedged-read trigger from the observed fetch-stage
// latency quantile. 0 disables hedging for this fetch: the histogram is
// still empty (cold start), hedging is configured off, or the pool has no
// second replica to race.
func (f *Frontend) hedgeDelay() time.Duration {
	q := f.cfg.Transfer.HedgeQuantile
	if q < 0 {
		return 0
	}
	if q == 0 {
		q = defaultHedgeQuantile
	}
	sec := f.core.Observer().StageQuantile(serving.StageFetch, q)
	if sec <= 0 {
		return 0
	}
	d := time.Duration(sec * float64(time.Second))
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	if lim := f.cfg.Transfer.Timeout / 2; d > lim {
		d = lim
	}
	return d
}

// fetchHedged races the first two replicas: the primary fetch gets delay to
// answer; past that a second fetch to the next replica is issued and the
// first success wins. The loser is left to finish and is discarded (its
// result channel is buffered) — canceling it would charge the breaker with a
// failure the worker didn't commit. A primary that fails outright (not
// slowly) degenerates to ordinary failover without burning a hedge.
func (f *Frontend) fetchHedged(ctx context.Context, kind string, id uint64, locs []int, delay time.Duration) *model.KVCache {
	type hedgeResult struct {
		c   *model.KVCache
		idx int
	}
	// The racing fetches ride a cancel-detached context: the caller stops
	// waiting at its own deadline (the ctx.Done case below), but a loser left
	// in flight finishes on the transfer engine's per-attempt timeout instead
	// of being killed at request end — a mid-stream cancel would surface as a
	// fetch error and charge the breaker with a failure the worker didn't
	// commit.
	fctx := context.WithoutCancel(ctx)
	ch := make(chan hedgeResult, 2)
	launch := func(idx int) {
		go func() { ch <- hedgeResult{f.fetchCache(fctx, locs[idx], kind, id), idx} }()
	}
	launch(0)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case r := <-ch:
		if r.c != nil {
			f.settleReplicaFetch(kind, id, r.c, locs[0], false, len(locs))
			return r.c
		}
		for i := 1; i < len(locs); i++ {
			if c := f.fetchCache(ctx, locs[i], kind, id); c != nil {
				f.settleReplicaFetch(kind, id, c, locs[i], true, len(locs))
				return c
			}
		}
		return nil
	case <-ctx.Done():
		return nil
	case <-timer.C:
	}
	launch(1)
	primaryFailed := false
	for i := 0; i < 2; i++ {
		r := <-ch
		if r.c != nil {
			outcome := "primary"
			if r.idx != 0 {
				outcome = "hedged"
			}
			f.hedgedCtr[outcome].Inc()
			f.settleReplicaFetch(kind, id, r.c, locs[r.idx], primaryFailed, len(locs))
			if i == 0 {
				// Reap the loser off the request path. A loser that failed
				// outright (not just lost the race) is a replica that cannot
				// serve the entry — without this, a dead replica hides behind
				// hedge wins and never gets failover accounting or repair.
				go func(winner hedgeResult) {
					if loser := <-ch; loser.c == nil {
						f.settleReplicaFetch(kind, id, winner.c, locs[winner.idx], true, len(locs))
					}
				}(r)
			}
			return r.c
		}
		if r.idx == 0 {
			primaryFailed = true
		}
	}
	f.hedgedCtr["miss"].Inc()
	for i := 2; i < len(locs); i++ {
		if c := f.fetchCache(ctx, locs[i], kind, id); c != nil {
			f.settleReplicaFetch(kind, id, c, locs[i], true, len(locs))
			return c
		}
	}
	return nil
}

// maybeReadRepair queues background copies of a fetched cache onto the
// replicas routing says should hold it, minus the one that served the read.
// Repairs ride the write-behind store queue (coalescing with regular stores
// of the same key) and a one-second token window bounds their rate.
func (f *Frontend) maybeReadRepair(kind string, id uint64, c *model.KVCache, src int) {
	if f.cfg.ReadRepairBudget < 0 || c == nil {
		return
	}
	for _, w := range f.replicaWorkers(routing.EntryHash(kind, id), f.replication()) {
		if w == src {
			continue
		}
		if !f.repairAdmit() {
			return
		}
		f.readRepairs.Inc()
		f.queueStore(w, kind, id, c)
	}
}

// repairAdmit spends one token from the per-second read-repair budget.
func (f *Frontend) repairAdmit() bool {
	budget := f.cfg.ReadRepairBudget
	if budget == 0 {
		budget = defaultReadRepairBudget
	}
	now := time.Now()
	f.repairMu.Lock()
	defer f.repairMu.Unlock()
	if now.Sub(f.repairWindow) >= time.Second {
		f.repairWindow = now
		f.repairCount = 0
	}
	if f.repairCount >= budget {
		return false
	}
	f.repairCount++
	return true
}

// flightCall is one in-flight item-cache fetch other requests can wait on.
type flightCall struct {
	done chan struct{}
	c    *model.KVCache
}

// fetchItemCaches pulls the per-candidate item caches with bounded
// concurrency (cfg.Transfer.FetchConcurrency) instead of one serial GET per
// candidate; misses leave nil holes that the ranker recomputes. Fetches of
// the same item — common when a batch of requests shares hot candidates —
// are single-flighted: one network GET per item, shared by every waiter.
func (f *Frontend) fetchItemCaches(ctx context.Context, ids []int) map[int]*model.KVCache {
	results := make([]*model.KVCache, len(ids))
	sem := make(chan struct{}, f.cfg.Transfer.FetchConcurrency)
	var wg sync.WaitGroup
	for slot, it := range ids {
		wg.Add(1)
		sem <- struct{}{}
		go func(slot, it int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[slot] = f.fetchItemCacheShared(ctx, it)
		}(slot, it)
	}
	wg.Wait()
	caches := make(map[int]*model.KVCache, len(ids))
	for slot, c := range results {
		if c != nil {
			caches[slot] = c
		}
	}
	return caches
}

// fetchItemCacheShared coalesces concurrent fetches of one item ID: the
// first caller (leader) issues the real fetch; followers block on its result.
// The shared *KVCache is safe to hand to multiple requests because execution
// never mutates supplied caches. A follower whose own context expires stops
// waiting; a leader that fails yields a miss for every waiter (they recompute
// — correctness never depends on the fetch).
func (f *Frontend) fetchItemCacheShared(ctx context.Context, it int) *model.KVCache {
	id := uint64(it)
	f.flightMu.Lock()
	if call, ok := f.flight[id]; ok {
		f.flightMu.Unlock()
		wait := time.Now()
		select {
		case <-call.done:
			f.mu.Lock()
			f.coalescedFetches++
			f.mu.Unlock()
			f.observeFetch(ctx, f.itemWorker(it), "item", "coalesced", 0, wait)
			return call.c
		case <-ctx.Done():
			return nil
		}
	}
	call := &flightCall{done: make(chan struct{})}
	f.flight[id] = call
	f.flightMu.Unlock()
	call.c = f.fetchReplicated(ctx, "item", id, f.itemReplicas(it))
	f.flightMu.Lock()
	delete(f.flight, id)
	f.flightMu.Unlock()
	close(call.done)
	return call.c
}

// fetchCache pulls and decodes one KV payload; any failure is a miss (the
// request recomputes, never errors). The response body streams straight into
// the codec's frame decoder — decode cost hides under receive time, and the
// full payload is never buffered separately. A truncated or corrupt stream is
// a decode-error miss (the decoder installs nothing on failure, so a partial
// body can never masquerade as a hit). A 404 means the worker evicted the
// entry, so the stale meta binding is unregistered. Every round trip lands in
// the request's trace as a StageFetch span plus an outcome counter.
func (f *Frontend) fetchCache(ctx context.Context, worker int, kind string, id uint64) *model.KVCache {
	if worker < 0 || worker >= len(f.cfg.CacheWorkers) {
		return nil
	}
	start := time.Now()
	u := fmt.Sprintf("%s/kv/%s/%d", f.cfg.CacheWorkers[worker], kind, id)
	status, _, body, tries, err := f.transfer.getStream(ctx, worker, u)
	if err != nil {
		f.noteFetchError()
		outcome := "error"
		if errors.Is(err, errBreakerOpen) {
			outcome = "breaker-open"
		}
		f.observeFetch(ctx, worker, kind, outcome, tries, start)
		if errors.Is(err, errBreakerOpen) {
			f.maybePurgeWorker(ctx, worker)
		}
		return nil
	}
	defer body.Close()
	if status == http.StatusNotFound {
		io.Copy(io.Discard, body)
		f.observeFetch(ctx, worker, kind, "miss", tries, start)
		f.metaUnregister(ctx, kind, id, worker)
		return nil
	}
	if status != http.StatusOK {
		io.Copy(io.Discard, body)
		f.observeFetch(ctx, worker, kind, "error", tries, start)
		return nil
	}
	c := model.NewKVCache(f.ranker.W.Config())
	n, err := c.ReadFrom(body)
	if err != nil {
		f.noteFetchError()
		f.observeFetch(ctx, worker, kind, "decode-error", tries, start)
		return nil
	}
	f.countBytes("rx", kind, "full", n)
	f.streamFetches.Inc()
	f.observeFetch(ctx, worker, kind, "hit", tries, start)
	return c
}

// countBytes folds one payload into bat_transfer_bytes_total{dir,kind,mode}.
func (f *Frontend) countBytes(dir, kind, mode string, n int64) {
	if c, ok := f.bytesCtr[dir+"/"+kind+"/"+mode]; ok {
		c.Add(n)
	}
}

func (f *Frontend) rememberStored(key string, worker, tokens int) {
	f.storedMu.Lock()
	if len(f.stored) >= maxStoredPrefixes {
		f.stored = make(map[string]storedPrefix)
	}
	f.stored[key] = storedPrefix{worker: worker, tokens: tokens}
	f.storedMu.Unlock()
}

func (f *Frontend) forgetStored(key string) {
	f.storedMu.Lock()
	delete(f.stored, key)
	f.storedMu.Unlock()
}

// kvChecksumHeader carries the FNV-1a/64 checksum (hex) of the stored prefix
// a delta PATCH expects the worker to still hold.
const kvChecksumHeader = "X-KV-Checksum"

// kvTokensHeader carries an entry's token count on HEAD probe responses.
const kvTokensHeader = "X-KV-Tokens"

// storeCache synchronously writes a payload — as a suffix-only delta append
// when this worker already holds a verified prefix of the entry, else a full
// PUT — and registers its location; failures are silent (the cache is an
// optimization). The write-behind queue and the poolguard's repair path both
// land here.
func (f *Frontend) storeCache(ctx context.Context, worker int, kind string, id uint64, c *model.KVCache) {
	if worker < 0 || worker >= len(f.cfg.CacheWorkers) {
		return
	}
	// Delta prefixes are tracked per (worker, key): with replication each
	// replica advances independently, so PATCH vs full PUT is decided per
	// copy, not per entry.
	key := kind + "/" + strconv.FormatUint(id, 10) + "@" + strconv.Itoa(worker)
	if f.tryDeltaStore(ctx, worker, kind, id, key, c) {
		return
	}
	data, err := c.MarshalBinary()
	if err != nil {
		return
	}
	u := fmt.Sprintf("%s/kv/%s/%d", f.cfg.CacheWorkers[worker], kind, id)
	status, _, err := f.transfer.send(ctx, worker, http.MethodPut, u, "application/octet-stream", data)
	if err != nil {
		f.noteFetchError()
		return
	}
	if status != http.StatusNoContent {
		return
	}
	f.countBytes("tx", kind, "full", int64(len(data)))
	f.rememberStored(key, worker, c.Len())
	f.registerLocation(ctx, kind, id, worker)
}

// tryDeltaStore ships only the tokens the worker doesn't have: when the
// frontend last stored this key on the same worker at N ≤ Len tokens, it
// PATCHes the [N, Len) suffix guarded by the prefix token count and checksum.
// Any mismatch (evicted, restarted, content drift) falls back to a full PUT —
// correctness never depends on the worker's state, only bytes moved do.
func (f *Frontend) tryDeltaStore(ctx context.Context, worker int, kind string, id uint64, key string, c *model.KVCache) bool {
	f.storedMu.Lock()
	prev, ok := f.stored[key]
	f.storedMu.Unlock()
	if !ok || prev.worker != worker || prev.tokens <= 0 || prev.tokens > c.Len() {
		return false
	}
	delta, err := c.MarshalRange(prev.tokens, c.Len())
	if err != nil {
		return false
	}
	sum, err := c.ChecksumRange(0, prev.tokens)
	if err != nil {
		return false
	}
	u := fmt.Sprintf("%s/kv/%s/%d?from=%d", f.cfg.CacheWorkers[worker], kind, id, prev.tokens)
	hdr := http.Header{}
	hdr.Set(kvChecksumHeader, strconv.FormatUint(sum, 16))
	status, _, err := f.transfer.sendHeader(ctx, worker, http.MethodPatch, u, "application/octet-stream", hdr, delta)
	if err != nil || status != http.StatusNoContent {
		f.deltaFallbacks.Inc()
		f.forgetStored(key)
		return false
	}
	f.countBytes("tx", kind, "delta", int64(len(delta)))
	f.deltaStores.Inc()
	f.rememberStored(key, worker, c.Len())
	f.registerLocation(ctx, kind, id, worker)
	return true
}

// registerLocation binds (kind, id) → worker in the meta service.
func (f *Frontend) registerLocation(ctx context.Context, kind string, id uint64, worker int) {
	body, err := json.Marshal(RegisterRequest{EntryRef: EntryRef{Kind: kind, ID: id}, Worker: worker})
	if err != nil {
		return
	}
	f.transfer.send(ctx, f.transfer.metaTarget(), http.MethodPost,
		f.cfg.MetaURL+"/v1/register", "application/json", body)
}

// queueStore hands a freshly computed cache to the write-behind queue; when
// the queue is disabled (StoreQueueDepth < 0) the store runs inline, the
// pre-write-behind behavior. A store for a key already waiting is coalesced
// (the latest cache wins — it strictly supersedes the older bytes); a full
// queue drops the store (counted) rather than stalling a batch boundary.
func (f *Frontend) queueStore(worker int, kind string, id uint64, c *model.KVCache) {
	if f.storeCh == nil {
		f.storeCache(f.storeCtx, worker, kind, id, c)
		return
	}
	// Pending jobs coalesce per (worker, key): replicated stores of one entry
	// to two workers are distinct jobs, while a re-store of the same replica
	// just refreshes the queued payload.
	key := kind + "/" + strconv.FormatUint(id, 10) + "@" + strconv.Itoa(worker)
	f.storeMu.Lock()
	if j, ok := f.storePending[key]; ok {
		j.worker, j.c = worker, c
		f.storeMu.Unlock()
		f.storeCoalesced.Inc()
		return
	}
	select {
	case f.storeCh <- key:
		f.storePending[key] = &storeJob{worker: worker, kind: kind, id: id, c: c}
		f.storeMu.Unlock()
	default:
		f.storeMu.Unlock()
		f.storeDrops.Inc()
	}
}

// queueStoreReplicas fans one fresh cache out to its replica set: the first
// worker is the primary (the pre-replication store), the rest are tagged
// secondary copies; every copy rides the same write-behind queue and
// registers its own meta binding on success.
func (f *Frontend) queueStoreReplicas(kind string, id uint64, c *model.KVCache, workers []int) {
	for ri, w := range workers {
		if ri == 0 {
			f.replicaStores["primary"].Inc()
		} else {
			f.replicaStores["secondary"].Inc()
		}
		f.queueStore(w, kind, id, c)
	}
}

// storeLoop is one write-behind worker: it drains the queue, running each
// store against the frontend-owned background context with a per-store
// timeout (a request's context dies with its response; these must not).
func (f *Frontend) storeLoop() {
	defer f.storeWG.Done()
	for {
		select {
		case <-f.storeCtx.Done():
			return
		case key := <-f.storeCh:
			f.storeMu.Lock()
			j := f.storePending[key]
			delete(f.storePending, key)
			f.storeActive++
			f.storeMu.Unlock()
			if j != nil {
				start := time.Now()
				ctx, cancel := context.WithTimeout(f.storeCtx, 4*f.cfg.Transfer.Timeout)
				f.storeCache(ctx, j.worker, j.kind, j.id, j.c)
				cancel()
				f.core.Observer().ObserveStage(serving.StageStore, time.Since(start))
			}
			f.storeMu.Lock()
			f.storeActive--
			f.storeCond.Broadcast()
			f.storeMu.Unlock()
		}
	}
}

// FlushStores blocks until every queued write-behind store has completed —
// the determinism hook for tests, benchmarks, and shutdown paths that need
// the pool to reflect all commits so far. Returns the context's error if it
// expires first. A frontend with the queue disabled returns immediately.
func (f *Frontend) FlushStores(ctx context.Context) error {
	if f.storeCh == nil {
		return nil
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.storeMu.Lock()
		defer f.storeMu.Unlock()
		for (len(f.storePending) > 0 || f.storeActive > 0) && f.storeCtx.Err() == nil {
			f.storeCond.Wait()
		}
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (f *Frontend) noteFetchError() {
	f.mu.Lock()
	f.fetchErrors++
	f.mu.Unlock()
}

// FrontendStats is the /v1/stats payload.
type FrontendStats struct {
	Requests       int64   `json:"requests"`
	UserPrefix     int64   `json:"user_prefix_requests"`
	ItemPrefix     int64   `json:"item_prefix_requests"`
	ReusedTokens   int64   `json:"reused_tokens"`
	ComputedTokens int64   `json:"computed_tokens"`
	TokenHitRate   float64 `json:"token_hit_rate"`
	FetchErrors    int64   `json:"fetch_errors"`
	// Failovers counts user-cache fetches served by a replica after the
	// first location failed; StaleUnregisters counts evicted entries whose
	// meta bindings were cleaned up after a worker 404.
	Failovers        int64 `json:"failovers"`
	StaleUnregisters int64 `json:"stale_unregisters"`
	// CoalescedFetches counts item-cache fetches answered by another
	// request's in-flight GET instead of a fresh network round trip.
	CoalescedFetches int64 `json:"coalesced_fetches"`
	// DedupedTokens counts prefix tokens whose forward was shared from an
	// identical in-batch miss; PrefetchedPlans counts plans served from a
	// fetch that started at enqueue and overlapped the batch window.
	DedupedTokens   int64 `json:"deduped_tokens"`
	PrefetchedPlans int64 `json:"prefetched_plans"`
	// Admission is the overload ladder's front door: in-flight/queue gauges
	// plus admitted/queued/shed counters.
	Admission admission.Stats `json:"admission"`
	// DegradedRequests counts responses served by the retrieval fallback;
	// DeadlineAborts counts full serves canceled mid-execution by an expired
	// deadline or disconnected client.
	DegradedRequests int64 `json:"degraded_requests"`
	DeadlineAborts   int64 `json:"deadline_aborts"`
	// Batches counts packed executions; AvgBatchSize is the mean requests
	// per batch; MaxBatchSize the largest batch formed.
	Batches      int64   `json:"batches"`
	AvgBatchSize float64 `json:"avg_batch_size"`
	MaxBatchSize int64   `json:"max_batch_size"`
	// WorkerPurges counts bulk meta cleanups (poolguard deaths plus
	// breaker-open sweeps); PurgedBindings is the total bindings they removed.
	WorkerPurges   int64 `json:"worker_purges"`
	PurgedBindings int64 `json:"purged_bindings"`
	// CalibratedCostRatio is the EWMA of observed/predicted full-serve
	// seconds; 0 means the deadline gate is still uncalibrated (never sheds).
	CalibratedCostRatio float64 `json:"calibrated_cost_ratio"`
	// Transfer-engine byte accounting: RxBytes counts streamed fetch payloads,
	// TxBytes full-PUT store payloads, TxDeltaBytes suffix-only PATCH payloads.
	RxBytes      int64 `json:"rx_bytes"`
	TxBytes      int64 `json:"tx_bytes"`
	TxDeltaBytes int64 `json:"tx_delta_bytes"`
	// StreamFetches counts cache fetches decoded frame-by-frame as the body
	// arrived; DeltaStores counts stores shipped as suffix-only appends;
	// DeltaFallbacks counts delta attempts that fell back to a full PUT.
	StreamFetches  int64 `json:"stream_fetches"`
	DeltaStores    int64 `json:"delta_stores"`
	DeltaFallbacks int64 `json:"delta_fallbacks"`
	// Write-behind queue health: coalesced re-stores of a still-queued key and
	// stores dropped on queue overflow.
	StoreCoalesced int64 `json:"store_coalesced"`
	StoreDrops     int64 `json:"store_drops"`
	// Replication health. Replication is the effective RF; ReplicaStores
	// counts secondary copies queued by Commit; ReadRepairs counts background
	// backfills triggered by degraded reads; HedgedFetches counts issued
	// hedge races and HedgedWins the races the second replica won;
	// CloseDroppedStores counts queued stores dropped at shutdown after the
	// bounded flush; Drains counts completed graceful worker drains.
	Replication        int   `json:"replication"`
	ReplicaStores      int64 `json:"replica_stores"`
	ReadRepairs        int64 `json:"read_repairs"`
	HedgedFetches      int64 `json:"hedged_fetches"`
	HedgedWins         int64 `json:"hedged_wins"`
	CloseDroppedStores int64 `json:"close_dropped_stores"`
	Drains             int64 `json:"drains"`
	// Guard is the poolguard's view of the cache pool, when one is attached.
	Guard *PoolGuardStats `json:"poolguard,omitempty"`
	// Workers is per-target transfer health (workers in index order, then
	// the meta service): request/error counts, average latency, and the
	// circuit breaker state, so degradation is measurable rather than
	// silent.
	Workers []WorkerHealth `json:"workers"`
}

// Stats snapshots the frontend.
func (f *Frontend) Stats() FrontendStats {
	cs := f.core.Stats()
	f.mu.Lock()
	st := FrontendStats{
		Requests: cs.Requests, UserPrefix: cs.UserPrefix, ItemPrefix: cs.ItemPrefix,
		ReusedTokens: cs.ReusedTokens, ComputedTokens: cs.ComputedTokens,
		DedupedTokens: cs.DedupedTokens, PrefetchedPlans: f.prefetchedPlans,
		FetchErrors: f.fetchErrors, Failovers: f.failovers,
		StaleUnregisters: f.staleUnregisters, CoalescedFetches: f.coalescedFetches,
		DegradedRequests: cs.DegradedRequests, DeadlineAborts: cs.DeadlineAborts,
		Batches: cs.Batches, MaxBatchSize: cs.MaxBatchSize,
		WorkerPurges: f.workerPurges, PurgedBindings: f.purgedBindings,
		CalibratedCostRatio: f.calibRatio,
	}
	guard := f.guard
	f.mu.Unlock()
	for key, c := range f.bytesCtr {
		switch key {
		case "rx/user/full", "rx/item/full", "rx/user/delta", "rx/item/delta":
			st.RxBytes += c.Value()
		case "tx/user/full", "tx/item/full":
			st.TxBytes += c.Value()
		case "tx/user/delta", "tx/item/delta":
			st.TxDeltaBytes += c.Value()
		}
	}
	st.StreamFetches = f.streamFetches.Value()
	st.DeltaStores = f.deltaStores.Value()
	st.DeltaFallbacks = f.deltaFallbacks.Value()
	st.StoreCoalesced = f.storeCoalesced.Value()
	st.StoreDrops = f.storeDrops.Value()
	st.Replication = f.replication()
	st.ReplicaStores = f.replicaStores["secondary"].Value()
	st.ReadRepairs = f.readRepairs.Value()
	st.HedgedWins = f.hedgedCtr["hedged"].Value()
	for _, c := range f.hedgedCtr {
		st.HedgedFetches += c.Value()
	}
	st.CloseDroppedStores = f.closeDrops.Value()
	st.Drains = f.drainsCtr.Value()
	if total := st.ReusedTokens + st.ComputedTokens; total > 0 {
		st.TokenHitRate = float64(st.ReusedTokens) / float64(total)
	}
	if cs.Batches > 0 {
		st.AvgBatchSize = float64(cs.BatchedRequests) / float64(cs.Batches)
	}
	st.Admission = cs.Admission
	if guard != nil {
		gs := guard.Stats()
		st.Guard = &gs
	}
	st.Workers = f.transfer.health()
	f.mu.Lock()
	for i := range f.draining {
		if i < len(st.Workers) {
			st.Workers[i].Draining = f.draining[i]
		}
	}
	f.mu.Unlock()
	return st
}

// Handler exposes the frontend API: POST /v1/rank, GET /v1/stats, GET
// /metrics (plain-text exposition: the core's per-stage latency histograms
// and counters plus the frontend's pool/fetch lines), GET /debug/trace (the
// last-N request traces, fetch spans tagged with worker and outcome), GET
// /v1/load (the routing tier's load + cache-residency snapshot), and
// /healthz. /v1/rank runs the serving core's overload ladder — admit (bounded
// in-flight + wait queue), degrade (retrieval fallback under queue pressure,
// pool ill-health, or a tight deadline via the frontend's ladder rungs), or
// shed (429 + Retry-After) — then the batch loop. The request's deadline
// comes from the Deadline-Ms header, defaulting to the admission config.
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/rank", f.core.HandleRank)
	mux.HandleFunc("/v1/stats", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, f.Stats())
	})
	mux.HandleFunc("/metrics", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		f.core.WriteMetrics(rw)
		f.writePoolMetrics(rw)
	})
	mux.HandleFunc("/debug/trace", f.core.HandleTraces)
	mux.HandleFunc("/v1/load", f.handleLoad)
	mux.HandleFunc("/v1/drain", f.handleDrain)
	mux.HandleFunc("/v1/undrain", f.handleUndrain)
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(rw, "ok")
	})
	return mux
}

// writePoolMetrics appends the disaggregated plane's lines to a /metrics
// scrape: pool fetch health, per-target transfer state, and the poolguard's
// repair counters when a guard is attached.
func (f *Frontend) writePoolMetrics(w io.Writer) {
	st := f.Stats()
	fmt.Fprintf(w, "bat_fetch_errors_total %d\n", st.FetchErrors)
	fmt.Fprintf(w, "bat_fetch_failovers_total %d\n", st.Failovers)
	fmt.Fprintf(w, "bat_coalesced_fetches_total %d\n", st.CoalescedFetches)
	fmt.Fprintf(w, "bat_prefetched_plans_total %d\n", st.PrefetchedPlans)
	fmt.Fprintf(w, "bat_stale_unregisters_total %d\n", st.StaleUnregisters)
	fmt.Fprintf(w, "bat_worker_purges_total %d\n", st.WorkerPurges)
	fmt.Fprintf(w, "bat_purged_bindings_total %d\n", st.PurgedBindings)
	fmt.Fprintf(w, "bat_calibrated_cost_ratio %g\n", st.CalibratedCostRatio)
	for _, wh := range st.Workers {
		fmt.Fprintf(w, "bat_transfer_requests_total{target=%q} %d\n", wh.Target, wh.Requests)
		fmt.Fprintf(w, "bat_transfer_errors_total{target=%q} %d\n", wh.Target, wh.Errors)
		fmt.Fprintf(w, "bat_transfer_breaker_skips_total{target=%q} %d\n", wh.Target, wh.BreakerSkips)
	}
	for i, wh := range st.Workers {
		if wh.Target == "meta" {
			continue
		}
		v := 0
		if wh.Draining {
			v = 1
		}
		fmt.Fprintf(w, "bat_worker_draining{worker=\"%d\"} %d\n", i, v)
	}
	if st.Guard != nil {
		fmt.Fprintf(w, "bat_poolguard_probes_total %d\n", st.Guard.Probes)
		fmt.Fprintf(w, "bat_poolguard_deaths_total %d\n", st.Guard.Deaths)
		fmt.Fprintf(w, "bat_poolguard_rejoins_total %d\n", st.Guard.Rejoins)
		fmt.Fprintf(w, "bat_poolguard_repaired_total %d\n", st.Guard.Repaired)
		fmt.Fprintf(w, "bat_scrub_sweeps_total %d\n", st.Guard.ScrubSweeps)
		fmt.Fprintf(w, "bat_scrub_repairs_total %d\n", st.Guard.ScrubRepairs)
		fmt.Fprintf(w, "bat_scrub_divergent_total %d\n", st.Guard.ScrubDivergent)
		fmt.Fprintf(w, "bat_under_replicated_entries %d\n", st.Guard.UnderReplicated)
		for _, kind := range []string{"user", "item"} {
			fmt.Fprintf(w, "bat_replicas_gauge{kind=%q} %g\n", kind, st.Guard.ReplicaAvg[kind])
		}
	}
}
