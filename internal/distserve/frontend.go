package distserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sync"

	"bat/internal/bipartite"
	"bat/internal/model"
	"bat/internal/ranking"
	"bat/internal/scheduler"
)

// ErrValidation marks request errors the caller can fix (unknown IDs, empty
// candidate sets); everything else is an internal serving failure.
var ErrValidation = errors.New("invalid request")

// FrontendConfig wires an inference frontend to its cluster.
type FrontendConfig struct {
	Dataset *ranking.Dataset
	Variant ranking.ModelVariant
	// MetaURL is the cache meta service's base URL.
	MetaURL string
	// CacheWorkers are the cache workers' base URLs; slice index is the
	// worker ID used with the meta service.
	CacheWorkers []string
	// Policy decides each request's attention pattern (default hotness-aware).
	Policy scheduler.Policy
	// TopK is the returned ranking length (default 10).
	TopK int
	// Client issues the HTTP calls. Defaults to a client bounded by
	// Transfer.Timeout — never a timeout-less http.DefaultClient, so a hung
	// cache worker cannot wedge requests.
	Client *http.Client
	// Transfer tunes the fault-tolerant transfer engine (timeouts, retries,
	// circuit breakers, fetch parallelism). Zero value = defaults.
	Transfer TransferConfig
}

// Frontend is the inference worker + prompt scheduler of Figure 3: it owns
// the model replica, consults the meta service, moves KV payloads to and
// from cache workers through the fault-tolerant transfer engine, and
// executes Bipartite Attention.
type Frontend struct {
	cfg      FrontendConfig
	ranker   *ranking.Ranker
	transfer *transferClient

	mu                           sync.Mutex
	requests                     int64
	userPrefix, itemPrefix       int64
	reusedTokens, computedTokens int64
	fetchErrors                  int64
	failovers                    int64
	staleUnregisters             int64
}

// NewFrontend builds a frontend.
func NewFrontend(cfg FrontendConfig) (*Frontend, error) {
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("distserve: nil dataset")
	}
	if cfg.MetaURL == "" || len(cfg.CacheWorkers) == 0 {
		return nil, fmt.Errorf("distserve: frontend needs a meta URL and at least one cache worker")
	}
	if cfg.Policy == nil {
		cfg.Policy = scheduler.HotnessAware{}
	}
	if cfg.TopK == 0 {
		cfg.TopK = 10
	}
	cfg.Transfer = cfg.Transfer.withDefaults()
	if cfg.Client == nil {
		// http.DefaultClient has no Timeout; a single hung worker would
		// stall /v1/rank forever. Bound every call even when the transfer
		// engine's per-attempt deadline is somehow bypassed.
		cfg.Client = &http.Client{Timeout: cfg.Transfer.Timeout}
	}
	r, err := ranking.NewRanker(cfg.Dataset, cfg.Variant)
	if err != nil {
		return nil, err
	}
	f := &Frontend{cfg: cfg, ranker: r}
	f.transfer = newTransferClient(cfg.Client, cfg.Transfer, len(cfg.CacheWorkers))
	return f, nil
}

// userWorker and itemWorker shard entries across cache workers.
func (f *Frontend) userWorker(u int) int {
	return int(mix(uint64(u)) % uint64(len(f.cfg.CacheWorkers)))
}

func (f *Frontend) itemWorker(i int) int {
	return int(mix(uint64(i)^0x1234) % uint64(len(f.cfg.CacheWorkers)))
}

// RankRequest / RankResponse mirror the single-process server's API.
type RankRequest struct {
	UserID       int   `json:"user_id"`
	CandidateIDs []int `json:"candidate_ids"`
}

// RankResponse is the frontend's reply.
type RankResponse struct {
	Ranking        []int  `json:"ranking"`
	Prefix         string `json:"prefix"`
	ReusedTokens   int    `json:"reused_tokens"`
	ComputedTokens int    `json:"computed_tokens"`
}

// Rank serves one request end to end through the disaggregated pool. The
// context bounds every transfer the request issues; cache fetch failures
// degrade to recompute, never to request failure.
func (f *Frontend) Rank(ctx context.Context, req RankRequest) (*RankResponse, error) {
	ds := f.cfg.Dataset
	if req.UserID < 0 || req.UserID >= len(ds.UserHistory) {
		return nil, fmt.Errorf("distserve: unknown user %d: %w", req.UserID, ErrValidation)
	}
	if len(req.CandidateIDs) == 0 {
		return nil, fmt.Errorf("distserve: empty candidate set: %w", ErrValidation)
	}
	for _, it := range req.CandidateIDs {
		if it < 0 || it >= len(ds.ItemTokens) {
			return nil, fmt.Errorf("distserve: unknown item %d: %w", it, ErrValidation)
		}
	}

	hotness := f.metaAccess(ctx, "user", uint64(req.UserID))
	userTokens := len(ds.UserHistory[req.UserID])
	itemTokens := 0
	for _, it := range req.CandidateIDs {
		itemTokens += len(ds.ItemTokens[it])
	}
	userLocs := f.metaLocate(ctx, "user", uint64(req.UserID))
	dec := f.cfg.Policy.Decide(scheduler.Context{
		UserTokens:  userTokens,
		ItemTokens:  itemTokens,
		UserHotness: hotness,
		UserCached:  len(userLocs) > 0,
		// The disaggregated pool evicts internally; the frontend treats it
		// as always admitting (cache workers apply their own budgets).
		UserPoolHasSpace: true,
	})

	kind := dec.Kind
	if dec.Recompute {
		kind = bipartite.UserPrefix
	}
	var caches bipartite.CacheSet
	if !dec.Recompute {
		if kind == bipartite.UserPrefix && len(userLocs) > 0 {
			caches.User = f.fetchUserCache(ctx, req.UserID, userLocs)
		}
		if kind == bipartite.ItemPrefix {
			caches.Items = f.fetchItemCaches(ctx, req.CandidateIDs)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("distserve: request canceled: %w", err)
	}

	evalReq := ranking.EvalRequest{User: req.UserID, Candidates: req.CandidateIDs}
	ranked, run, err := f.ranker.Rank(evalReq, kind, ranking.RankOpts{Caches: caches})
	if err != nil {
		return nil, err
	}

	// Write back freshly computed caches (the scheduler's background cache
	// write path).
	if !dec.Recompute {
		if run.NewUserCache != nil && dec.AdmitUser {
			f.storeCache(ctx, f.userWorker(req.UserID), "user", uint64(req.UserID), run.NewUserCache)
		}
		for slot, c := range run.NewItemCaches {
			it := req.CandidateIDs[slot]
			f.storeCache(ctx, f.itemWorker(it), "item", uint64(it), c)
		}
	}

	f.mu.Lock()
	f.requests++
	if kind == bipartite.UserPrefix {
		f.userPrefix++
	} else {
		f.itemPrefix++
	}
	f.reusedTokens += int64(run.ReusedTokens)
	f.computedTokens += int64(run.ComputedTokens)
	f.mu.Unlock()

	k := f.cfg.TopK
	if k > len(ranked) {
		k = len(ranked)
	}
	top := make([]int, k)
	for i := 0; i < k; i++ {
		top[i] = req.CandidateIDs[ranked[i]]
	}
	return &RankResponse{
		Ranking:        top,
		Prefix:         kind.String(),
		ReusedTokens:   run.ReusedTokens,
		ComputedTokens: run.ComputedTokens,
	}, nil
}

// metaAccess records an access; network failures degrade to cold (0).
func (f *Frontend) metaAccess(ctx context.Context, kind string, id uint64) float64 {
	body, err := json.Marshal(EntryRef{Kind: kind, ID: id})
	if err != nil {
		return 0
	}
	status, respBody, err := f.transfer.send(ctx, f.transfer.metaTarget(), http.MethodPost,
		f.cfg.MetaURL+"/v1/access", "application/json", body)
	if err != nil {
		f.noteFetchError()
		return 0
	}
	var out AccessResponse
	if status != http.StatusOK || json.Unmarshal(respBody, &out) != nil {
		return 0
	}
	return out.Hotness
}

// metaLocate resolves an entry's workers; failures degrade to "not cached".
func (f *Frontend) metaLocate(ctx context.Context, kind string, id uint64) []int {
	u := fmt.Sprintf("%s/v1/locate?kind=%s&id=%d", f.cfg.MetaURL, url.QueryEscape(kind), id)
	status, body, err := f.transfer.get(ctx, f.transfer.metaTarget(), u)
	if err != nil {
		f.noteFetchError()
		return nil
	}
	if status != http.StatusOK {
		return nil
	}
	var out LocateResponse
	if json.Unmarshal(body, &out) != nil {
		return nil
	}
	return out.Workers
}

// metaUnregister drops a stale location binding after a worker miss, so
// metaLocate (and the hotness-aware policy's UserCached signal) stops
// reporting entries the pool has already evicted. Only unregisters that
// removed a live binding count as stale cleanups — a cold miss on a
// never-registered entry is a no-op, not staleness.
func (f *Frontend) metaUnregister(ctx context.Context, kind string, id uint64, worker int) {
	body, err := json.Marshal(RegisterRequest{EntryRef: EntryRef{Kind: kind, ID: id}, Worker: worker})
	if err != nil {
		return
	}
	_, respBody, err := f.transfer.send(ctx, f.transfer.metaTarget(), http.MethodPost,
		f.cfg.MetaURL+"/v1/unregister", "application/json", body)
	if err != nil {
		return
	}
	var out UnregisterResponse
	if json.Unmarshal(respBody, &out) == nil && out.Removed {
		f.mu.Lock()
		f.staleUnregisters++
		f.mu.Unlock()
	}
}

// fetchUserCache tries every replica location meta returned, in order, and
// returns the first payload that decodes — a dead or evicted first replica
// fails over to the next instead of forcing a recompute.
func (f *Frontend) fetchUserCache(ctx context.Context, user int, locs []int) *model.KVCache {
	for i, loc := range locs {
		if c := f.fetchCache(ctx, loc, "user", uint64(user)); c != nil {
			if i > 0 {
				f.mu.Lock()
				f.failovers++
				f.mu.Unlock()
			}
			return c
		}
	}
	return nil
}

// fetchItemCaches pulls the per-candidate item caches with bounded
// concurrency (cfg.Transfer.FetchConcurrency) instead of one serial GET per
// candidate; misses leave nil holes that the ranker recomputes.
func (f *Frontend) fetchItemCaches(ctx context.Context, ids []int) map[int]*model.KVCache {
	results := make([]*model.KVCache, len(ids))
	sem := make(chan struct{}, f.cfg.Transfer.FetchConcurrency)
	var wg sync.WaitGroup
	for slot, it := range ids {
		wg.Add(1)
		sem <- struct{}{}
		go func(slot, it int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[slot] = f.fetchCache(ctx, f.itemWorker(it), "item", uint64(it))
		}(slot, it)
	}
	wg.Wait()
	caches := make(map[int]*model.KVCache, len(ids))
	for slot, c := range results {
		if c != nil {
			caches[slot] = c
		}
	}
	return caches
}

// fetchCache pulls and decodes one KV payload; any failure is a miss (the
// request recomputes, never errors). A 404 means the worker evicted the
// entry, so the stale meta binding is unregistered.
func (f *Frontend) fetchCache(ctx context.Context, worker int, kind string, id uint64) *model.KVCache {
	if worker < 0 || worker >= len(f.cfg.CacheWorkers) {
		return nil
	}
	u := fmt.Sprintf("%s/kv/%s/%d", f.cfg.CacheWorkers[worker], kind, id)
	status, data, err := f.transfer.get(ctx, worker, u)
	if err != nil {
		f.noteFetchError()
		return nil
	}
	if status == http.StatusNotFound {
		f.metaUnregister(ctx, kind, id, worker)
		return nil
	}
	if status != http.StatusOK {
		return nil
	}
	c := model.NewKVCache(f.ranker.W.Config())
	if err := c.UnmarshalBinary(data); err != nil {
		f.noteFetchError()
		return nil
	}
	return c
}

// storeCache writes a payload and registers its location; failures are
// silent (the cache is an optimization).
func (f *Frontend) storeCache(ctx context.Context, worker int, kind string, id uint64, c *model.KVCache) {
	data, err := c.MarshalBinary()
	if err != nil {
		return
	}
	u := fmt.Sprintf("%s/kv/%s/%d", f.cfg.CacheWorkers[worker], kind, id)
	status, _, err := f.transfer.send(ctx, worker, http.MethodPut, u, "application/octet-stream", data)
	if err != nil {
		f.noteFetchError()
		return
	}
	if status != http.StatusNoContent {
		return
	}
	body, err := json.Marshal(RegisterRequest{EntryRef: EntryRef{Kind: kind, ID: id}, Worker: worker})
	if err != nil {
		return
	}
	f.transfer.send(ctx, f.transfer.metaTarget(), http.MethodPost,
		f.cfg.MetaURL+"/v1/register", "application/json", body)
}

func (f *Frontend) noteFetchError() {
	f.mu.Lock()
	f.fetchErrors++
	f.mu.Unlock()
}

// FrontendStats is the /v1/stats payload.
type FrontendStats struct {
	Requests       int64   `json:"requests"`
	UserPrefix     int64   `json:"user_prefix_requests"`
	ItemPrefix     int64   `json:"item_prefix_requests"`
	ReusedTokens   int64   `json:"reused_tokens"`
	ComputedTokens int64   `json:"computed_tokens"`
	TokenHitRate   float64 `json:"token_hit_rate"`
	FetchErrors    int64   `json:"fetch_errors"`
	// Failovers counts user-cache fetches served by a replica after the
	// first location failed; StaleUnregisters counts evicted entries whose
	// meta bindings were cleaned up after a worker 404.
	Failovers        int64 `json:"failovers"`
	StaleUnregisters int64 `json:"stale_unregisters"`
	// Workers is per-target transfer health (workers in index order, then
	// the meta service): request/error counts, average latency, and the
	// circuit breaker state, so degradation is measurable rather than
	// silent.
	Workers []WorkerHealth `json:"workers"`
}

// Stats snapshots the frontend.
func (f *Frontend) Stats() FrontendStats {
	f.mu.Lock()
	st := FrontendStats{
		Requests: f.requests, UserPrefix: f.userPrefix, ItemPrefix: f.itemPrefix,
		ReusedTokens: f.reusedTokens, ComputedTokens: f.computedTokens,
		FetchErrors: f.fetchErrors, Failovers: f.failovers,
		StaleUnregisters: f.staleUnregisters,
	}
	f.mu.Unlock()
	if total := st.ReusedTokens + st.ComputedTokens; total > 0 {
		st.TokenHitRate = float64(st.ReusedTokens) / float64(total)
	}
	st.Workers = f.transfer.health()
	return st
}

// Handler exposes the frontend API: POST /v1/rank, GET /v1/stats, /healthz.
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/rank", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req RankRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := f.Rank(r.Context(), req)
		if err != nil {
			// Only caller mistakes are 400s; ranker or transfer failures
			// are the server's fault.
			code := http.StatusInternalServerError
			if errors.Is(err, ErrValidation) {
				code = http.StatusBadRequest
			}
			http.Error(rw, err.Error(), code)
			return
		}
		writeJSON(rw, resp)
	})
	mux.HandleFunc("/v1/stats", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, f.Stats())
	})
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(rw, "ok")
	})
	return mux
}

// mix is splitmix64's finalizer.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
