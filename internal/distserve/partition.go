package distserve

import (
	"net/http"

	"bat/internal/metrics"
	"bat/internal/partition"
)

// NewWorkerPartition attaches an adaptive capacity partition controller to a
// cache worker: the worker's byte budget is split between the "user" and
// "item" cache classes (itemFraction to items, mirroring
// core.Options.ItemBudgetFraction), and the controller re-divides the split
// from the per-class hit/miss counters the worker already keeps. Hit bytes
// stand in for token-weighted hits — payload size is proportional to token
// count on the wire.
//
// The returned controller is not yet running; call Run (and Stop on
// shutdown). Pass cfg zero-valued for the documented defaults.
func NewWorkerPartition(w *CacheWorker, itemFraction float64, cfg partition.Config) (*partition.Controller, error) {
	total := w.Stats().Capacity
	itemBudget := int64(itemFraction * float64(total))
	w.SetClassBudget("item", itemBudget)
	w.SetClassBudget("user", total-itemBudget)
	class := func(name string) partition.Class {
		return partition.Class{
			Name: name,
			Stats: func() partition.ClassStats {
				st := w.Stats().Classes[name]
				return partition.ClassStats{Hits: st.HitBytes, Misses: st.Misses}
			},
			Capacity: func() int64 {
				_, budget := w.ClassUsage(name)
				return budget
			},
			SetCapacity: func(b int64) int64 { return w.SetClassBudget(name, b) },
		}
	}
	return partition.New(cfg, class("user"), class("item"))
}

// PartitionedWorkerHandler wraps a worker's handler with the controller's
// bat_partition_* metrics served at GET /metrics (text exposition), so a
// partitioned worker exposes its split next to its /stats.
func PartitionedWorkerHandler(w *CacheWorker, ctrl *partition.Controller) http.Handler {
	reg := metrics.NewRegistry()
	ctrl.RegisterMetrics(reg)
	mux := http.NewServeMux()
	mux.Handle("/", w.Handler())
	mux.HandleFunc("/metrics", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WriteText(rw)
	})
	return mux
}
