package distserve

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"bat/internal/model"
	"bat/internal/scheduler"
)

// transferCache builds a tokens-long KV cache with real forward-pass rows
// under the given config (any weights produce valid frames; only the dims
// matter to the codec).
func transferCache(tb testing.TB, cfg model.Config, tokens int, seed int64) *model.KVCache {
	tb.Helper()
	c := model.NewKVCache(cfg)
	w := model.NewWeights(cfg, seed)
	rng := rand.New(rand.NewSource(seed))
	toks := make([]int, tokens)
	pos := make([]int, tokens)
	for i := range toks {
		toks[i] = rng.Intn(cfg.Vocab)
		pos[i] = i
	}
	w.Forward(toks, pos, nil, c)
	return c
}

// TestWorkerAppendMatchesFullPut is the delta protocol's core correctness
// property over real HTTP: PUT(prefix) + PATCH(suffix) leaves the worker
// holding bytes identical to PUT(full).
func TestWorkerAppendMatchesFullPut(t *testing.T) {
	cfg := model.TinyGR(32)
	c := transferCache(t, cfg, 12, 5)
	full, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	prefix, err := c.MarshalRange(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := c.MarshalRange(8, 12)
	if err != nil {
		t.Fatal(err)
	}

	cw, err := NewCacheWorker(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(cw.Handler())
	defer srv.Close()

	put, _ := http.NewRequest(http.MethodPut, srv.URL+"/kv/user/1", bytes.NewReader(prefix))
	resp, err := http.DefaultClient.Do(put)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT prefix status %d", resp.StatusCode)
	}

	patch, _ := http.NewRequest(http.MethodPatch, srv.URL+"/kv/user/1?from=8", bytes.NewReader(delta))
	patch.Header.Set("X-KV-Checksum", strconv.FormatUint(model.ChecksumEncoded(prefix), 16))
	resp, err = http.DefaultClient.Do(patch)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PATCH status %d", resp.StatusCode)
	}

	got, ok := cw.Get("user/1")
	if !ok {
		t.Fatal("entry missing after append")
	}
	if !bytes.Equal(got, full) {
		t.Fatalf("appended bytes differ from full PUT (%d vs %d bytes)", len(got), len(full))
	}
	st := cw.Stats()
	if st.Appends != 1 || st.AppendRejects != 0 {
		t.Fatalf("appends=%d rejects=%d, want 1/0", st.Appends, st.AppendRejects)
	}

	// The guards: wrong checksum and wrong token count are 409 conflicts (the
	// client should re-PUT), a malformed delta is a 400, a missing key a 404.
	rejects := []struct {
		url, checksum string
		body          []byte
		want          int
	}{
		{srv.URL + "/kv/user/1?from=12", "0", delta, http.StatusConflict},
		{srv.URL + "/kv/user/1?from=8", "0", delta, http.StatusConflict},
		{srv.URL + "/kv/user/1?from=12", strconv.FormatUint(model.ChecksumEncoded(full), 16), delta[:9], http.StatusBadRequest},
		{srv.URL + "/kv/user/2?from=8", strconv.FormatUint(model.ChecksumEncoded(prefix), 16), delta, http.StatusNotFound},
	}
	for i, rej := range rejects {
		req, _ := http.NewRequest(http.MethodPatch, rej.url, bytes.NewReader(rej.body))
		req.Header.Set("X-KV-Checksum", rej.checksum)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != rej.want {
			t.Fatalf("reject %d: status %d, want %d", i, resp.StatusCode, rej.want)
		}
	}
	if got, _ := cw.Get("user/1"); !bytes.Equal(got, full) {
		t.Fatal("rejected PATCHes corrupted the stored entry")
	}
}

// TestFrontendDeltaStoreAndFallback drives the frontend's store path: the
// second store of a grown cache ships a suffix-only PATCH; when the worker's
// content drifts behind the frontend's back, the checksum guard rejects the
// delta and the store falls back to a full PUT — the worker always ends up
// with the exact full-marshal bytes.
func TestFrontendDeltaStoreAndFallback(t *testing.T) {
	d := newDeployment(t, 1, scheduler.StaticUser{})
	f := d.frontend
	cfg := f.ranker.W.Config()
	ctx := context.Background()

	grown := transferCache(t, cfg, 12, 9)
	prefixBytes, err := grown.MarshalRange(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	prefix := model.NewKVCache(cfg)
	if err := prefix.UnmarshalBinary(prefixBytes); err != nil {
		t.Fatal(err)
	}
	full, err := grown.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Store prefix (full PUT), then the grown cache (delta PATCH).
	f.storeCache(ctx, 0, "user", 1, prefix)
	f.storeCache(ctx, 0, "user", 1, grown)
	if got, _ := d.workers[0].Get("user/1"); !bytes.Equal(got, full) {
		t.Fatal("delta store left the worker with different bytes than a full PUT")
	}
	st := f.Stats()
	if st.DeltaStores != 1 || st.DeltaFallbacks != 0 {
		t.Fatalf("delta_stores=%d fallbacks=%d, want 1/0", st.DeltaStores, st.DeltaFallbacks)
	}
	if st.TxDeltaBytes <= 0 || st.TxDeltaBytes >= int64(len(full)) {
		t.Fatalf("tx_delta_bytes=%d, want in (0, %d)", st.TxDeltaBytes, len(full))
	}

	// Drift: replace the worker's content behind the frontend's back, then
	// grow again. The PATCH 409s and the fallback full PUT restores truth.
	if err := d.workers[0].Put("user/1", prefixBytes); err != nil {
		t.Fatal(err)
	}
	grown2 := transferCache(t, cfg, 16, 9)
	full2, err := grown2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	f.storeCache(ctx, 0, "user", 1, grown2)
	if got, _ := d.workers[0].Get("user/1"); !bytes.Equal(got, full2) {
		t.Fatal("fallback did not restore the full payload")
	}
	st = f.Stats()
	if st.DeltaFallbacks != 1 {
		t.Fatalf("delta_fallbacks=%d, want 1", st.DeltaFallbacks)
	}
	if d.workers[0].Stats().AppendRejects == 0 {
		t.Fatal("worker never counted the rejected append")
	}

	// After the fallback the frontend re-learned the stored size; the next
	// grow is a delta again.
	grown3 := transferCache(t, cfg, 20, 9)
	f.storeCache(ctx, 0, "user", 1, grown3)
	if f.Stats().DeltaStores != 2 {
		t.Fatalf("delta_stores=%d after recovery, want 2", f.Stats().DeltaStores)
	}
}

// TestDeltaStoresReduceCommitBytes pins the acceptance number: on an
// append-heavy workload (a cache growing in small steps, re-stored each
// step), delta stores move less than half the bytes full PUTs would.
func TestDeltaStoresReduceCommitBytes(t *testing.T) {
	d := newDeployment(t, 1, scheduler.StaticUser{})
	f := d.frontend
	cfg := f.ranker.W.Config()
	ctx := context.Background()

	var fullEveryTime int64
	for tokens := 16; tokens <= 48; tokens += 4 {
		c := transferCache(t, cfg, tokens, 21)
		data, err := c.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		fullEveryTime += int64(len(data))
		f.storeCache(ctx, 0, "user", 7, c)
	}
	st := f.Stats()
	moved := st.TxBytes + st.TxDeltaBytes
	if st.DeltaStores == 0 {
		t.Fatal("append-heavy workload never used a delta store")
	}
	if moved*2 > fullEveryTime {
		t.Fatalf("delta stores moved %d bytes; full PUTs would move %d — want >=50%% reduction", moved, fullEveryTime)
	}
}

// TestTruncatedStreamIsDecodeErrorMiss: a worker that dies mid-payload (full
// Content-Length declared, body cut inside a layer frame) must surface as a
// decode-error miss — never a panic, never a partial cache hit.
func TestTruncatedStreamIsDecodeErrorMiss(t *testing.T) {
	meta := NewMetaServer(300, func() time.Time { return time.Unix(0, 0) })
	metaSrv := httptest.NewServer(meta.Handler())
	defer metaSrv.Close()

	var payload []byte
	trunc := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/octet-stream")
		rw.Header().Set("Content-Length", strconv.Itoa(len(payload)))
		rw.Write(payload[:len(payload)-64]) // cut mid-frame; server resets the stream
	}))
	defer trunc.Close()

	f, err := NewFrontend(FrontendConfig{
		Dataset:      testDataset(t),
		MetaURL:      metaSrv.URL,
		CacheWorkers: []string{trunc.URL},
		Policy:       scheduler.StaticUser{},
		Transfer:     TransferConfig{MaxRetries: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	c := transferCache(t, f.ranker.W.Config(), 10, 3)
	payload, err = c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	if got := f.fetchCache(context.Background(), 0, "user", 1); got != nil {
		t.Fatalf("truncated stream produced a cache with %d tokens", got.Len())
	}
	if n := f.fetchCtr["decode-error"].Value(); n != 1 {
		t.Fatalf("decode-error count %d, want 1", n)
	}
	if f.Stats().StreamFetches != 0 {
		t.Fatal("truncated fetch counted as a completed stream")
	}
}

// TestWriteBehindCoalesceDropFlush exercises the queue's three behaviors with
// a gated worker: a re-store of a still-queued key coalesces (latest cache
// wins), overflow drops (counted, never blocks), and FlushStores drains
// everything once the worker unblocks.
func TestWriteBehindCoalesceDropFlush(t *testing.T) {
	gate := make(chan struct{})
	var mu sync.Mutex
	stored := make(map[string]int)
	cw := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut {
			<-gate // every PUT parks until the test opens the gate
			mu.Lock()
			stored[r.URL.Path]++
			mu.Unlock()
		}
		rw.WriteHeader(http.StatusNoContent)
	}))
	defer cw.Close()
	meta := NewMetaServer(300, func() time.Time { return time.Unix(0, 0) })
	metaSrv := httptest.NewServer(meta.Handler())
	defer metaSrv.Close()

	f, err := NewFrontend(FrontendConfig{
		Dataset:      testDataset(t),
		MetaURL:      metaSrv.URL,
		CacheWorkers: []string{cw.URL},
		Policy:       scheduler.StaticUser{},
		Transfer: TransferConfig{
			StoreQueueDepth: 2, StoreWorkers: 1,
			Timeout: 5 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	cfg := f.ranker.W.Config()
	c := transferCache(t, cfg, 4, 1)

	// One store occupies the single worker (parked on the gate); the queue
	// holds two more; everything past that must drop without blocking.
	f.queueStore(0, "user", 1, c)
	waitFor(t, func() bool {
		f.storeMu.Lock()
		defer f.storeMu.Unlock()
		return f.storeActive == 1
	})
	f.queueStore(0, "user", 2, c)
	f.queueStore(0, "user", 3, c)
	f.queueStore(0, "user", 2, c) // coalesces with the queued user/2
	f.queueStore(0, "user", 4, c) // queue full: dropped
	f.queueStore(0, "user", 5, c) // dropped

	st := f.Stats()
	if st.StoreCoalesced != 1 {
		t.Fatalf("store_coalesced=%d, want 1", st.StoreCoalesced)
	}
	if st.StoreDrops != 2 {
		t.Fatalf("store_drops=%d, want 2", st.StoreDrops)
	}

	close(gate)
	flushFrontend(t, f)
	mu.Lock()
	defer mu.Unlock()
	for _, key := range []string{"/kv/user/1", "/kv/user/2", "/kv/user/3"} {
		if stored[key] != 1 {
			t.Fatalf("%s stored %d times, want 1 (stores: %v)", key, stored[key], stored)
		}
	}
	if stored["/kv/user/4"] != 0 || stored["/kv/user/5"] != 0 {
		t.Fatalf("dropped stores reached the worker: %v", stored)
	}
}

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkStoreFullPut vs BenchmarkStoreDeltaAppend: the worker-side cost of
// re-storing a grown cache whole versus splicing just the suffix.
func BenchmarkStoreFullPut(b *testing.B) {
	cfg := model.TinyGR(32)
	grown := transferCache(b, cfg, 64, 2)
	full, err := grown.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	cw, err := NewCacheWorker(64 << 20)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(full)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cw.Put("user/1", full); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreDeltaAppend(b *testing.B) {
	cfg := model.TinyGR(32)
	grown := transferCache(b, cfg, 64, 2)
	prefix, err := grown.MarshalRange(0, 60)
	if err != nil {
		b.Fatal(err)
	}
	delta, err := grown.MarshalRange(60, 64)
	if err != nil {
		b.Fatal(err)
	}
	sum := model.ChecksumEncoded(prefix)
	cw, err := NewCacheWorker(64 << 20)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(delta)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := cw.Put("user/1", prefix); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := cw.Append("user/1", 60, sum, delta); err != nil {
			b.Fatal(err)
		}
	}
}
