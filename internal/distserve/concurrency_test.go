package distserve

import (
	"context"
	"sync"
	"testing"
	"time"

	"bat/internal/bipartite"
	"bat/internal/ranking"
	"bat/internal/scheduler"
)

// distExpectedRanking is the per-request reference the batched distributed
// pipeline must match bit-for-bit (execution is bit-exact, so cache state
// changes cost, never scores).
func distExpectedRanking(t *testing.T, ds *ranking.Dataset, req RankRequest, topK int) []int {
	t.Helper()
	r, err := ranking.NewRanker(ds, ranking.VariantBase)
	if err != nil {
		t.Fatal(err)
	}
	ranked, _, err := r.Rank(ranking.EvalRequest{User: req.UserID, Candidates: req.CandidateIDs},
		bipartite.ItemPrefix, ranking.RankOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) > topK {
		ranked = ranked[:topK]
	}
	ids := make([]int, len(ranked))
	for i, idx := range ranked {
		ids[i] = req.CandidateIDs[idx]
	}
	return ids
}

// TestDistserveParallelRankBitIdentical: concurrent requests through the
// full cluster (meta + workers + frontend, real HTTP) batch in the serving
// core and must rank exactly like the per-request path. Under -race this
// also exercises the concurrent plan fetches and the single-flight map.
func TestDistserveParallelRankBitIdentical(t *testing.T) {
	d := newDeploymentCfg(t, 2, scheduler.StaticItem{}, func(cfg *FrontendConfig) {
		cfg.MaxBatch = 8
		cfg.BatchWindow = 20 * time.Millisecond
	})
	ds := d.frontend.cfg.Dataset

	const n = 16
	reqs := make([]RankRequest, n)
	want := make([][]int, n)
	for i := range reqs {
		reqs[i] = RankRequest{UserID: i % 6, CandidateIDs: []int{2 + i%4, 11, 23 + i%3, 40, 55}}
		want[i] = distExpectedRanking(t, ds, reqs[i], 10)
	}

	got := make([][]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := d.frontend.Rank(context.Background(), reqs[i])
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = resp.Ranking
		}(i)
	}
	wg.Wait()
	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if len(got[i]) != len(want[i]) {
			t.Fatalf("request %d ranking %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d ranking %v, want %v (batched != per-request)", i, got[i], want[i])
			}
		}
	}
}

// TestSingleFlightCoalescesItemFetches: a batch of requests sharing hot
// candidates must not issue one GET per (request, item) — concurrent
// fetches of the same item coalesce onto one in-flight network call.
func TestSingleFlightCoalescesItemFetches(t *testing.T) {
	d := newDeploymentCfg(t, 2, scheduler.StaticItem{}, func(cfg *FrontendConfig) {
		cfg.MaxBatch = 8
		cfg.BatchWindow = 250 * time.Millisecond
	})

	shared := []int{3, 17, 29, 41}
	seed := RankRequest{UserID: 0, CandidateIDs: shared}

	// Seed: the first serve misses everywhere, computes the item caches, and
	// Commit stores them to the pool before the response returns.
	if _, err := d.frontend.Rank(context.Background(), seed); err != nil {
		t.Fatal(err)
	}

	// Flood: M concurrent requests over the same candidates land in one
	// batch window; their plans fetch the now-warm caches concurrently.
	const m = 6
	var wg sync.WaitGroup
	errs := make([]error, m)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = d.frontend.Rank(context.Background(), RankRequest{UserID: 1 + i%5, CandidateIDs: shared})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("flood request %d: %v", i, err)
		}
	}

	st := d.frontend.Stats()
	if st.CoalescedFetches == 0 {
		t.Fatal("no coalesced fetches; concurrent same-item fetches each hit the network")
	}
	var hits int64
	for _, w := range d.workers {
		hits += w.Stats().Hits
	}
	// Without coalescing the flood alone would score m*len(shared) worker
	// hits; coalescing must cut total network reads well below that.
	if max := int64(m * len(shared)); hits >= max {
		t.Fatalf("%d worker GET hits, want < %d (single-flight not coalescing)", hits, max)
	}
	if st.ReusedTokens == 0 {
		t.Fatal("flood reused no tokens despite warm pool")
	}
}
