// Package distserve realizes Figure 3's disaggregated serving architecture
// as real networked processes: KV cache workers that store serialized KV
// payloads under a byte budget, a cache meta service tracking locations and
// hotness, and an inference frontend that schedules prompts, fetches prefix
// caches over HTTP (the transfer-engine role), executes the GR model, and
// writes fresh caches back. The transfer engine (resilience.go) is fault
// tolerant: per-attempt timeouts, retried idempotent GETs with jittered
// backoff, per-worker circuit breakers, replica failover, and
// bounded-concurrency parallel item fetch keep a slow or dead worker from
// costing more than a timeout budget — requests degrade to recompute, never
// stall.
//
// Every component is an http.Handler, so a deployment is N+2 ordinary HTTP
// servers — in-process for tests (httptest), separate processes via
// cmd/batdist.
package distserve

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"bat/internal/model"
)

// CacheWorker stores opaque KV payloads at user/item granularity with LRU
// eviction under a byte budget — one node's share of the disaggregated pool.
type CacheWorker struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[string]*cwEntry
	lru      *list.List // front = most recent
	onEvict  func(key string)

	// draining refuses new stores (PUT/PATCH/bulk → 503) while reads keep
	// working, so a drain never chases a moving target.
	draining bool

	// Soft per-class partition: when a class ("user"/"item") has a budget,
	// victim selection prefers the LRU tail of an over-budget class before
	// the global tail. With no budgets set, eviction is exactly the
	// historical global LRU. Budgets are advisory (a class may sit over
	// budget until space is needed), which only ever improves hit rate.
	classBudget map[string]int64
	classUsed   map[string]int64
	classStats  map[string]*cwClassStats

	hits, misses, puts, evictions int64
	appends, appendRejects        int64
	drains, bulkStored            int64
}

// cwClassStats accumulates one class's counters (bytes for hits so the
// partition controller sees token-proportional weight; counts elsewhere).
type cwClassStats struct {
	Hits, Misses, Evictions int64
	HitBytes                int64
}

// classOf buckets a cache key into a partition class.
func classOf(key string) string {
	kind, _, err := ParseCacheKey(key)
	if err != nil {
		return ""
	}
	return kind
}

// bumpClass adjusts a class's resident-byte accounting. Caller holds mu.
func (w *CacheWorker) bumpClass(class string, delta int64) {
	if class == "" {
		return
	}
	w.classUsed[class] += delta
}

// statsFor returns (allocating) a class's counter block. Caller holds mu.
func (w *CacheWorker) statsFor(class string) *cwClassStats {
	st, ok := w.classStats[class]
	if !ok {
		st = &cwClassStats{}
		w.classStats[class] = st
	}
	return st
}

// evictOneLocked removes one victim under the partition policy and returns
// its key. exclude is never chosen (the entry being appended to). Caller
// holds mu.
func (w *CacheWorker) evictOneLocked(exclude *cwEntry) (string, bool) {
	var victim *cwEntry
	if len(w.classBudget) > 0 {
		// Prefer the oldest entry of the most over-budget class.
		worst := int64(0)
		var worstClass string
		for class, budget := range w.classBudget {
			if over := w.classUsed[class] - budget; budget > 0 && over > worst {
				worst, worstClass = over, class
			}
		}
		if worstClass != "" {
			for el := w.lru.Back(); el != nil; el = el.Prev() {
				e := el.Value.(*cwEntry)
				if e != exclude && e.class == worstClass {
					victim = e
					break
				}
			}
		}
	}
	if victim == nil {
		for el := w.lru.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*cwEntry); e != exclude {
				victim = e
				break
			}
		}
	}
	if victim == nil {
		return "", false
	}
	w.lru.Remove(victim.elem)
	delete(w.entries, victim.key)
	w.used -= int64(len(victim.data))
	w.bumpClass(victim.class, -int64(len(victim.data)))
	w.evictions++
	if victim.class != "" {
		w.statsFor(victim.class).Evictions++
	}
	return victim.key, true
}

// SetClassBudget sets (or clears, with 0) one class's soft byte budget and
// returns the applied budget. Shrinks apply lazily: the class drains toward
// its new budget as stores need space, so no resident bytes are dropped
// before the space is actually wanted.
func (w *CacheWorker) SetClassBudget(class string, bytes int64) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if bytes <= 0 {
		delete(w.classBudget, class)
		return 0
	}
	w.classBudget[class] = bytes
	return bytes
}

// ClassUsage reports one class's resident bytes and budget (0 = unset).
func (w *CacheWorker) ClassUsage(class string) (used, budget int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.classUsed[class], w.classBudget[class]
}

// Typed Append failures, mapped to HTTP statuses by the handler. A reject is
// never an error for the client's data — it just means the delta protocol's
// precondition failed and the caller should re-send the whole payload.
var (
	// errAppendMissing: the worker no longer holds the key (evicted or never
	// stored) — there is nothing to append to.
	errAppendMissing = errors.New("distserve: append target missing")
	// errAppendConflict: the stored payload is not the prefix the client
	// thinks it is (token count or checksum mismatch).
	errAppendConflict = errors.New("distserve: append prefix mismatch")
	// errAppendBadDelta: the delta payload itself is malformed (bad header,
	// wrong architecture, truncated frames).
	errAppendBadDelta = errors.New("distserve: malformed append delta")
)

// Append splices a suffix-token delta payload onto a stored entry, guarded by
// the prefix token count and checksum the client believes the worker holds.
// The merge happens at the wire level (model.AppendEncoded), so the result is
// byte-identical to a full PUT of the grown cache. Eviction makes room as a
// PUT of the merged size would, but never evicts the entry being appended to.
func (w *CacheWorker) Append(key string, from int, checksum uint64, delta []byte) error {
	dh, err := model.ParseWireHeader(delta)
	if err != nil || len(delta) != dh.PayloadSize() {
		w.mu.Lock()
		w.appendRejects++
		w.mu.Unlock()
		return errAppendBadDelta
	}
	w.mu.Lock()
	e, ok := w.entries[key]
	if !ok {
		w.misses++
		w.appendRejects++
		w.mu.Unlock()
		return errAppendMissing
	}
	sh, err := model.ParseWireHeader(e.data)
	if err != nil || sh.Tokens != from || model.ChecksumEncoded(e.data) != checksum {
		w.appendRejects++
		w.mu.Unlock()
		return errAppendConflict
	}
	merged, err := model.AppendEncoded(e.data, delta)
	if err != nil {
		w.appendRejects++
		w.mu.Unlock()
		return fmt.Errorf("%w: %v", errAppendBadDelta, err)
	}
	if int64(len(merged)) > w.capacity {
		w.appendRejects++
		w.mu.Unlock()
		return fmt.Errorf("distserve: merged payload %d bytes exceeds capacity %d", len(merged), w.capacity)
	}
	grow := int64(len(merged) - len(e.data))
	var victims []string
	for w.used+grow > w.capacity {
		k, ok := w.evictOneLocked(e)
		if !ok {
			break
		}
		victims = append(victims, k)
	}
	e.data = merged
	w.used += grow
	w.bumpClass(e.class, grow)
	w.lru.MoveToFront(e.elem)
	w.appends++
	hook := w.onEvict
	w.mu.Unlock()
	if hook != nil {
		for _, k := range victims {
			hook(k)
		}
	}
	return nil
}

type cwEntry struct {
	key   string
	class string // "user", "item", or "" (unparseable key)
	data  []byte
	elem  *list.Element
}

// NewCacheWorker builds a worker with the given byte budget.
func NewCacheWorker(capacityBytes int64) (*CacheWorker, error) {
	if capacityBytes <= 0 {
		return nil, fmt.Errorf("distserve: cache worker needs a positive capacity")
	}
	return &CacheWorker{
		capacity:    capacityBytes,
		entries:     make(map[string]*cwEntry),
		lru:         list.New(),
		classBudget: make(map[string]int64),
		classUsed:   make(map[string]int64),
		classStats:  make(map[string]*cwClassStats),
	}, nil
}

// SetEvictHook installs a callback invoked (outside the worker's lock) with
// each LRU-evicted key, so deployments can unregister evicted entries from
// the meta service instead of leaving stale location bindings behind.
func (w *CacheWorker) SetEvictHook(fn func(key string)) {
	w.mu.Lock()
	w.onEvict = fn
	w.mu.Unlock()
}

// Put stores (or replaces) a payload, evicting LRU entries to fit. Payloads
// larger than the whole budget are rejected.
func (w *CacheWorker) Put(key string, data []byte) error {
	w.mu.Lock()
	if int64(len(data)) > w.capacity {
		w.mu.Unlock()
		return fmt.Errorf("distserve: payload %d bytes exceeds capacity %d", len(data), w.capacity)
	}
	if old, ok := w.entries[key]; ok {
		w.used -= int64(len(old.data))
		w.bumpClass(old.class, -int64(len(old.data)))
		w.lru.Remove(old.elem)
		delete(w.entries, key)
	}
	var victims []string
	for w.used+int64(len(data)) > w.capacity {
		k, ok := w.evictOneLocked(nil)
		if !ok {
			break
		}
		victims = append(victims, k)
	}
	e := &cwEntry{key: key, class: classOf(key), data: data}
	e.elem = w.lru.PushFront(e)
	w.entries[key] = e
	w.used += int64(len(data))
	w.bumpClass(e.class, int64(len(data)))
	w.puts++
	hook := w.onEvict
	w.mu.Unlock()
	if hook != nil {
		for _, k := range victims {
			hook(k)
		}
	}
	return nil
}

// Get fetches a payload, refreshing recency.
func (w *CacheWorker) Get(key string) ([]byte, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	e, ok := w.entries[key]
	if !ok {
		w.misses++
		if class := classOf(key); class != "" {
			w.statsFor(class).Misses++
		}
		return nil, false
	}
	w.lru.MoveToFront(e.elem)
	w.hits++
	if e.class != "" {
		st := w.statsFor(e.class)
		st.Hits++
		st.HitBytes += int64(len(e.data))
	}
	return e.data, true
}

// Peek returns a payload without touching recency or hit/miss counters — the
// anti-entropy scrubber's HEAD probes must not keep cold entries warm.
func (w *CacheWorker) Peek(key string) ([]byte, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	e, ok := w.entries[key]
	if !ok {
		return nil, false
	}
	return e.data, true
}

// maxResidentIDs bounds a /v1/keys listing; beyond it the summary is a
// sample, which a bloom-hint consumer tolerates by design.
const maxResidentIDs = 65536

// ResidentIDs lists up to max resident entry IDs of the given kind
// (""=any), mirroring Peek's discipline: a map iteration only — no recency
// promotion, no hit/miss accounting — so a residency poll can never keep a
// cold entry warm or reorder eviction. Keys that fail to parse are skipped.
func (w *CacheWorker) ResidentIDs(kind string, max int) []uint64 {
	if max <= 0 || max > maxResidentIDs {
		max = maxResidentIDs
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]uint64, 0, len(w.entries))
	for k := range w.entries {
		ekind, id, err := ParseCacheKey(k)
		if err != nil || (kind != "" && ekind != kind) {
			continue
		}
		if len(out) >= max {
			break
		}
		out = append(out, id)
	}
	return out
}

// SetDraining flips the worker's drain state.
func (w *CacheWorker) SetDraining(v bool) {
	w.mu.Lock()
	w.draining = v
	w.mu.Unlock()
}

// Draining reports whether the worker is refusing stores.
func (w *CacheWorker) Draining() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.draining
}

// Delete removes a payload.
func (w *CacheWorker) Delete(key string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	e, ok := w.entries[key]
	if !ok {
		return false
	}
	w.lru.Remove(e.elem)
	delete(w.entries, key)
	w.used -= int64(len(e.data))
	w.bumpClass(e.class, -int64(len(e.data)))
	return true
}

// ResidentKeys is the GET /v1/keys payload: the worker's resident entry IDs
// for one kind.
type ResidentKeys struct {
	Kind string   `json:"kind"`
	IDs  []uint64 `json:"ids"`
}

// WorkerStats is the /stats payload.
type WorkerStats struct {
	Entries   int   `json:"entries"`
	UsedBytes int64 `json:"used_bytes"`
	Capacity  int64 `json:"capacity_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
	// Appends counts successful delta splices; AppendRejects counts PATCHes
	// refused (missing key, prefix mismatch, malformed delta, over capacity) —
	// each reject costs the client one full-PUT fallback.
	Appends       int64 `json:"appends"`
	AppendRejects int64 `json:"append_rejects"`
	// Draining mirrors the worker's drain state; Drains counts completed
	// drains and BulkStored entries accepted over /v1/bulk.
	Draining   bool  `json:"draining"`
	Drains     int64 `json:"drains"`
	BulkStored int64 `json:"bulk_stored"`
	// Classes breaks residency and traffic down by cache class when the
	// worker has seen classed keys (user/item), the partition controller's
	// per-worker signal.
	Classes map[string]WorkerClassStats `json:"classes,omitempty"`
}

// WorkerClassStats is one cache class's slice of WorkerStats.
type WorkerClassStats struct {
	UsedBytes   int64 `json:"used_bytes"`
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
	Hits        int64 `json:"hits"`
	HitBytes    int64 `json:"hit_bytes"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
}

// Stats snapshots the worker.
func (w *CacheWorker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := WorkerStats{
		Entries: len(w.entries), UsedBytes: w.used, Capacity: w.capacity,
		Hits: w.hits, Misses: w.misses, Puts: w.puts, Evictions: w.evictions,
		Appends: w.appends, AppendRejects: w.appendRejects,
		Draining: w.draining, Drains: w.drains, BulkStored: w.bulkStored,
	}
	if len(w.classStats) > 0 || len(w.classUsed) > 0 {
		st.Classes = make(map[string]WorkerClassStats)
		for class, cs := range w.classStats {
			st.Classes[class] = WorkerClassStats{
				UsedBytes: w.classUsed[class], BudgetBytes: w.classBudget[class],
				Hits: cs.Hits, HitBytes: cs.HitBytes, Misses: cs.Misses, Evictions: cs.Evictions,
			}
		}
		for class, used := range w.classUsed {
			if _, ok := st.Classes[class]; !ok {
				st.Classes[class] = WorkerClassStats{UsedBytes: used, BudgetBytes: w.classBudget[class]}
			}
		}
	}
	return st
}

// readPayload buffers an upload body, preallocating from Content-Length and
// refusing anything past the worker's whole byte budget before it can balloon
// the heap (such a payload could never be stored anyway).
func (w *CacheWorker) readPayload(r *http.Request) ([]byte, error) {
	return readBodyCapped(r.Body, r.ContentLength, w.capacity)
}

// Handler exposes the worker:
//
//	PUT    /kv/{key}                 store payload (request body)
//	PATCH  /kv/{key}?from={tokens}   append suffix-token delta (X-KV-Checksum
//	                                 guards the stored prefix; 409 = re-PUT)
//	GET    /kv/{key}                 fetch payload (404 on miss)
//	HEAD   /kv/{key}                 token count + checksum probe (no LRU touch)
//	DELETE /kv/{key}
//	POST   /v1/bulk                  ingest a drain stream of framed entries
//	POST   /v1/drain                 drain this worker to peers (drain.go)
//	POST   /v1/resume                leave the draining state
//	GET    /v1/keys?kind=user        resident entry IDs (Peek discipline:
//	                                 no LRU touch, no counters)
//	GET    /stats
func (w *CacheWorker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/kv/", func(rw http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/kv/")
		if key == "" {
			http.Error(rw, "missing key", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodPut:
			if w.Draining() {
				http.Error(rw, "draining", http.StatusServiceUnavailable)
				return
			}
			data, err := w.readPayload(r)
			if errors.Is(err, errBodyOverCap) {
				http.Error(rw, err.Error(), http.StatusInsufficientStorage)
				return
			}
			if err != nil {
				http.Error(rw, err.Error(), http.StatusBadRequest)
				return
			}
			if err := w.Put(key, data); err != nil {
				http.Error(rw, err.Error(), http.StatusInsufficientStorage)
				return
			}
			rw.WriteHeader(http.StatusNoContent)
		case http.MethodPatch:
			if w.Draining() {
				http.Error(rw, "draining", http.StatusServiceUnavailable)
				return
			}
			from, err := strconv.Atoi(r.URL.Query().Get("from"))
			if err != nil || from <= 0 {
				http.Error(rw, "bad or missing from= token count", http.StatusBadRequest)
				return
			}
			checksum, err := strconv.ParseUint(r.Header.Get("X-KV-Checksum"), 16, 64)
			if err != nil {
				http.Error(rw, "bad or missing X-KV-Checksum header", http.StatusBadRequest)
				return
			}
			delta, err := w.readPayload(r)
			if err != nil {
				http.Error(rw, err.Error(), http.StatusBadRequest)
				return
			}
			switch err := w.Append(key, from, checksum, delta); {
			case err == nil:
				rw.WriteHeader(http.StatusNoContent)
			case errors.Is(err, errAppendMissing):
				http.Error(rw, err.Error(), http.StatusNotFound)
			case errors.Is(err, errAppendConflict):
				http.Error(rw, err.Error(), http.StatusConflict)
			case errors.Is(err, errAppendBadDelta):
				http.Error(rw, err.Error(), http.StatusBadRequest)
			default:
				http.Error(rw, err.Error(), http.StatusInsufficientStorage)
			}
		case http.MethodGet:
			data, ok := w.Get(key)
			if !ok {
				http.Error(rw, "miss", http.StatusNotFound)
				return
			}
			rw.Header().Set("Content-Type", "application/octet-stream")
			if _, err := rw.Write(data); err != nil {
				return // client went away
			}
		case http.MethodHead:
			// Scrubber probe: token count + checksum without moving the body
			// or touching LRU recency.
			data, ok := w.Peek(key)
			if !ok {
				rw.WriteHeader(http.StatusNotFound)
				return
			}
			hdr, err := model.ParseWireHeader(data)
			if err != nil {
				rw.WriteHeader(http.StatusInternalServerError)
				return
			}
			rw.Header().Set(kvTokensHeader, strconv.Itoa(hdr.Tokens))
			rw.Header().Set(kvChecksumHeader, strconv.FormatUint(model.ChecksumEncoded(data), 16))
			rw.Header().Set("Content-Length", strconv.Itoa(len(data)))
			rw.WriteHeader(http.StatusOK)
		case http.MethodDelete:
			w.Delete(key)
			rw.WriteHeader(http.StatusNoContent)
		default:
			http.Error(rw, "unsupported method", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/v1/bulk", w.handleBulk)
	mux.HandleFunc("/v1/drain", w.handleDrain)
	mux.HandleFunc("/v1/resume", w.handleResume)
	mux.HandleFunc("/v1/keys", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		max, _ := strconv.Atoi(r.URL.Query().Get("max"))
		ids := w.ResidentIDs(r.URL.Query().Get("kind"), max)
		rw.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(rw).Encode(ResidentKeys{Kind: r.URL.Query().Get("kind"), IDs: ids}); err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/stats", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(rw).Encode(w.Stats()); err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(rw, "ok")
	})
	return mux
}
