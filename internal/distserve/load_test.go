package distserve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"bat/internal/routing"
	"bat/internal/scheduler"
)

// TestResidentKeysDoesNotPerturbEvictionOrder pins the Peek discipline of
// the listing endpoint the routing tier polls: GET /v1/keys must not promote
// entries in the LRU or touch the hit/miss counters. The probe is
// deterministic — we arrange a known eviction victim, hammer /v1/keys, then
// force an eviction and check the victim did not change.
func TestResidentKeysDoesNotPerturbEvictionOrder(t *testing.T) {
	cw, err := NewCacheWorker(250)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(cw.Handler())
	defer srv.Close()

	if err := cw.Put("user/1", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := cw.Put("user/2", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	// Promote user/1: the LRU victim is now user/2.
	if _, ok := cw.Get("user/1"); !ok {
		t.Fatal("user/1 missing")
	}
	before := cw.Stats()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/v1/keys?kind=user")
		if err != nil {
			t.Fatal(err)
		}
		var keys ResidentKeys
		if err := json.NewDecoder(resp.Body).Decode(&keys); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(keys.IDs) != 2 {
			t.Fatalf("resident IDs = %v, want two users", keys.IDs)
		}
	}

	after := cw.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("listing touched counters: hits %d->%d misses %d->%d",
			before.Hits, after.Hits, before.Misses, after.Misses)
	}

	// Force one eviction. If /v1/keys had promoted user/2 (a Get-style walk
	// would), user/1 would be the victim here instead.
	if err := cw.Put("user/3", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, ok := cw.Peek("user/2"); ok {
		t.Fatal("user/2 survived eviction — listing perturbed LRU order")
	}
	if _, ok := cw.Peek("user/1"); !ok {
		t.Fatal("user/1 evicted — listing perturbed LRU order")
	}
}

// TestLoadSnapshotReportsResidencyWithoutTouchingLRU drives the full
// frontend path: GET /v1/load folds worker residency into a bloom summary
// the router's cache-affinity scorer can query, and the poll leaves the
// workers' hit/miss counters untouched (a Get-based collector would bump
// them — the deterministic tell that eviction order was perturbed).
func TestLoadSnapshotReportsResidencyWithoutTouchingLRU(t *testing.T) {
	d := newDeploymentCfg(t, 2, scheduler.StaticUser{}, func(cfg *FrontendConfig) {
		cfg.LoadSummaryTTL = -1 // refresh on every poll
	})

	// Seed user caches on the workers directly, bypassing the serving path.
	if err := d.workers[0].Put("user/1", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := d.workers[1].Put("user/2", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	var before [2]WorkerStats
	for i, w := range d.workers {
		before[i] = w.Stats()
	}

	var snap LoadSnapshot
	for i := 0; i < 3; i++ {
		resp, err := http.Get(d.front.URL + "/v1/load")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/v1/load status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	if snap.ResidentUsers != 2 {
		t.Fatalf("resident_users = %d, want 2", snap.ResidentUsers)
	}
	if snap.MaxInFlight <= 0 {
		t.Fatalf("max_in_flight = %d, want positive capacity", snap.MaxInFlight)
	}
	sum, err := routing.DecodeSummary(snap.Users)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []uint64{1, 2} {
		if !sum.Contains(routing.EntryHash("user", id)) {
			t.Fatalf("summary missing user %d", id)
		}
	}
	if sum.Contains(routing.EntryHash("user", 424242)) &&
		sum.Contains(routing.EntryHash("user", 424243)) &&
		sum.Contains(routing.EntryHash("user", 424244)) {
		t.Fatal("summary claims residency for arbitrary absent users")
	}

	for i, w := range d.workers {
		after := w.Stats()
		if after.Hits != before[i].Hits || after.Misses != before[i].Misses {
			t.Fatalf("worker %d counters moved under /v1/load: hits %d->%d misses %d->%d",
				i, before[i].Hits, after.Hits, before[i].Misses, after.Misses)
		}
	}
}
