// Package cachemeta implements the cache meta service (§5.1): a logically
// centralized index of which KV cache worker holds each user/item entry,
// plus the sliding-window hotness estimator the hotness-aware prompt
// scheduler consults (§5.3).
//
// Hotness follows the paper's windowed-frequency design: each access bumps
// an exponentially-decayed counter whose time constant is the window length,
// so the estimate approximates "requests in the recent W seconds". The decay
// is applied lazily on read/update, matching the paper's asynchronous
// maintenance ("the cache meta service decays its sliding-window frequency
// estimate ... asynchronously").
package cachemeta

import (
	"math"
	"sort"

	"bat/internal/kvcache"
)

// WorkerID identifies a KV cache worker.
type WorkerID int

// freqState is one key's decayed access counter.
type freqState struct {
	count float64
	last  float64 // time of last decay application
}

// Service is the meta service. It is not safe for concurrent use; the
// discrete-event simulator and the single scheduler goroutine both access it
// sequentially, and the HTTP server wraps it in its own lock.
type Service struct {
	window float64
	index  map[kvcache.EntryKey]map[WorkerID]struct{}
	freq   map[kvcache.EntryKey]*freqState
}

// New returns a meta service with the given hotness window in seconds.
func New(windowSec float64) *Service {
	if windowSec <= 0 {
		windowSec = 300
	}
	return &Service{
		window: windowSec,
		index:  make(map[kvcache.EntryKey]map[WorkerID]struct{}),
		freq:   make(map[kvcache.EntryKey]*freqState),
	}
}

// Window returns the estimator window in seconds.
func (s *Service) Window() float64 { return s.window }

// Normalize converts a hotness estimate observed at time now into the
// time-independent form count·e^(now/W). Because every entry decays at the
// same exponential rate, normalized values compare correctly at any later
// time without touching stored state — this is how the paper's
// "asynchronously decayed" per-entry estimates are kept orderable inside
// the cache worker's min-hotness heap. The exponent is clamped so traces
// hundreds of windows long cannot overflow.
func (s *Service) Normalize(hotness, now float64) float64 {
	e := now / s.window
	if e > 600 {
		e = 600
	}
	return hotness * math.Exp(e)
}

// RecordAccess notes an access to key at time now (seconds) and returns the
// refreshed hotness estimate.
func (s *Service) RecordAccess(k kvcache.EntryKey, now float64) float64 {
	st, ok := s.freq[k]
	if !ok {
		st = &freqState{last: now}
		s.freq[k] = st
	}
	st.count = st.count*s.decay(now-st.last) + 1
	st.last = now
	return st.count
}

// Hotness returns the decayed access estimate at time now without recording
// an access. Unknown keys are cold (0).
func (s *Service) Hotness(k kvcache.EntryKey, now float64) float64 {
	st, ok := s.freq[k]
	if !ok {
		return 0
	}
	return st.count * s.decay(now-st.last)
}

func (s *Service) decay(dt float64) float64 {
	if dt <= 0 {
		return 1
	}
	return math.Exp(-dt / s.window)
}

// RegisterEntry records that worker w holds key k's physical cache.
func (s *Service) RegisterEntry(k kvcache.EntryKey, w WorkerID) {
	locs, ok := s.index[k]
	if !ok {
		locs = make(map[WorkerID]struct{}, 1)
		s.index[k] = locs
	}
	locs[w] = struct{}{}
}

// UnregisterEntry removes worker w from key k's locations (eviction path).
// It reports whether a binding was actually removed, so callers can tell a
// stale-entry cleanup from a no-op.
func (s *Service) UnregisterEntry(k kvcache.EntryKey, w WorkerID) bool {
	locs, ok := s.index[k]
	if !ok {
		return false
	}
	if _, held := locs[w]; !held {
		return false
	}
	delete(locs, w)
	if len(locs) == 0 {
		delete(s.index, k)
	}
	return true
}

// UnregisterWorker removes every binding held by worker w in one sweep —
// the bulk cleanup path for a dead cache worker, instead of letting each of
// its keys rot until a per-key 404 cleans it lazily. It returns the affected
// keys (sorted by kind then ID) so the caller can rank them by hotness and
// re-replicate the hottest onto surviving workers.
func (s *Service) UnregisterWorker(w WorkerID) []kvcache.EntryKey {
	var keys []kvcache.EntryKey
	for k, locs := range s.index {
		if _, held := locs[w]; !held {
			continue
		}
		delete(locs, w)
		if len(locs) == 0 {
			delete(s.index, k)
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Kind != keys[j].Kind {
			return keys[i].Kind < keys[j].Kind
		}
		return keys[i].ID < keys[j].ID
	})
	return keys
}

// Binding is one indexed entry with every worker bound to it.
type Binding struct {
	Key     kvcache.EntryKey
	Workers []WorkerID
}

// Bindings returns shard `shard` of `of` of the index, sorted by kind then
// ID, each entry's workers ascending. Sharding hashes the key (not insertion
// order), so an anti-entropy scrubber sweeping shards round-robin visits
// every entry exactly once per cycle regardless of churn between sweeps.
func (s *Service) Bindings(shard, of int) []Binding {
	if of <= 0 {
		of = 1
	}
	if shard < 0 {
		shard = 0
	}
	var out []Binding
	for k, locs := range s.index {
		if (k.ID*2+uint64(k.Kind))%uint64(of) != uint64(shard%of) {
			continue
		}
		ws := make([]WorkerID, 0, len(locs))
		for w := range locs {
			ws = append(ws, w)
		}
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		out = append(out, Binding{Key: k, Workers: ws})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Kind != out[j].Key.Kind {
			return out[i].Key.Kind < out[j].Key.Kind
		}
		return out[i].Key.ID < out[j].Key.ID
	})
	return out
}

// HasEntry reports whether any worker holds k.
func (s *Service) HasEntry(k kvcache.EntryKey) bool { return len(s.index[k]) > 0 }

// Locations returns the workers holding k, in ascending ID order.
func (s *Service) Locations(k kvcache.EntryKey) []WorkerID {
	locs := s.index[k]
	if len(locs) == 0 {
		return nil
	}
	out := make([]WorkerID, 0, len(locs))
	for w := range locs {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PickLocation chooses a worker to serve k from, preferring the requester's
// local worker to avoid network transfer (the benefit HRCS replication buys).
func (s *Service) PickLocation(k kvcache.EntryKey, local WorkerID) (WorkerID, bool) {
	locs := s.index[k]
	if len(locs) == 0 {
		return 0, false
	}
	if _, ok := locs[local]; ok {
		return local, true
	}
	// Deterministic remote choice: lowest ID. With HRCS, remote reads only
	// happen for sharded (single-location) items anyway.
	best, found := WorkerID(0), false
	for w := range locs {
		if !found || w < best {
			best, found = w, true
		}
	}
	return best, found
}

// EntryCount returns the number of indexed keys.
func (s *Service) EntryCount() int { return len(s.index) }

// PruneCold drops frequency state colder than minHotness at time now,
// bounding estimator memory on long traces.
func (s *Service) PruneCold(now, minHotness float64) int {
	pruned := 0
	for k, st := range s.freq {
		if st.count*s.decay(now-st.last) < minHotness {
			delete(s.freq, k)
			pruned++
		}
	}
	return pruned
}
