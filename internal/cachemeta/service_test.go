package cachemeta

import (
	"math"
	"testing"

	"bat/internal/kvcache"
)

func uk(id uint64) kvcache.EntryKey { return kvcache.EntryKey{Kind: kvcache.UserEntry, ID: id} }
func ik(id uint64) kvcache.EntryKey { return kvcache.EntryKey{Kind: kvcache.ItemEntry, ID: id} }

func TestNewDefaultsWindow(t *testing.T) {
	if New(0).Window() != 300 {
		t.Fatal("zero window should default to 300s")
	}
	if New(60).Window() != 60 {
		t.Fatal("window not stored")
	}
}

func TestHotnessAccumulatesWithinWindow(t *testing.T) {
	s := New(300)
	for i := 0; i < 5; i++ {
		s.RecordAccess(uk(1), float64(i))
	}
	h := s.Hotness(uk(1), 5)
	if h < 4 || h > 5 {
		t.Fatalf("hotness after 5 rapid accesses = %v, want ~5", h)
	}
}

func TestHotnessDecays(t *testing.T) {
	s := New(300)
	s.RecordAccess(uk(1), 0)
	h0 := s.Hotness(uk(1), 0)
	h1 := s.Hotness(uk(1), 300) // one window later: e^-1
	if math.Abs(h1-h0*math.Exp(-1)) > 1e-9 {
		t.Fatalf("decay after one window: %v, want %v", h1, h0*math.Exp(-1))
	}
	h2 := s.Hotness(uk(1), 3000) // ten windows later: essentially cold
	if h2 > 1e-3 {
		t.Fatalf("hotness after 10 windows = %v", h2)
	}
}

func TestHotnessUnknownKeyIsCold(t *testing.T) {
	s := New(300)
	if s.Hotness(uk(42), 100) != 0 {
		t.Fatal("unknown key should be cold")
	}
}

func TestHotnessDistinguishesActiveFromCasualUsers(t *testing.T) {
	s := New(300)
	// Active user: a request every 30s. Casual user: one request.
	for i := 0; i < 10; i++ {
		s.RecordAccess(uk(1), float64(i*30))
	}
	s.RecordAccess(uk(2), 0)
	if s.Hotness(uk(1), 300) <= s.Hotness(uk(2), 300) {
		t.Fatal("active user should be hotter than casual user")
	}
}

func TestHotnessMonotoneInTimeSinceAccess(t *testing.T) {
	s := New(60)
	s.RecordAccess(uk(1), 0)
	prev := math.Inf(1)
	for _, dt := range []float64{0, 10, 60, 120, 600} {
		h := s.Hotness(uk(1), dt)
		if h > prev {
			t.Fatalf("hotness increased with idle time at dt=%v", dt)
		}
		prev = h
	}
}

func TestRecordAccessReturnsEstimate(t *testing.T) {
	s := New(300)
	if got := s.RecordAccess(uk(1), 0); got != 1 {
		t.Fatalf("first access estimate = %v, want 1", got)
	}
	if got := s.RecordAccess(uk(1), 0); got != 2 {
		t.Fatalf("second access estimate = %v, want 2", got)
	}
}

func TestIndexRegisterLookup(t *testing.T) {
	s := New(300)
	if s.HasEntry(ik(5)) {
		t.Fatal("empty index should have no entries")
	}
	s.RegisterEntry(ik(5), 2)
	s.RegisterEntry(ik(5), 0)
	s.RegisterEntry(ik(5), 2) // duplicate is idempotent
	if !s.HasEntry(ik(5)) {
		t.Fatal("entry not found after register")
	}
	locs := s.Locations(ik(5))
	if len(locs) != 2 || locs[0] != 0 || locs[1] != 2 {
		t.Fatalf("locations = %v", locs)
	}
	if s.EntryCount() != 1 {
		t.Fatalf("entry count = %d", s.EntryCount())
	}
}

func TestUnregisterEntry(t *testing.T) {
	s := New(300)
	s.RegisterEntry(uk(1), 0)
	s.RegisterEntry(uk(1), 1)
	s.UnregisterEntry(uk(1), 0)
	if locs := s.Locations(uk(1)); len(locs) != 1 || locs[0] != 1 {
		t.Fatalf("locations = %v", locs)
	}
	s.UnregisterEntry(uk(1), 1)
	if s.HasEntry(uk(1)) {
		t.Fatal("entry should be gone")
	}
	s.UnregisterEntry(uk(9), 0) // absent key is a no-op
}

func TestPickLocationPrefersLocal(t *testing.T) {
	s := New(300)
	s.RegisterEntry(ik(1), 0)
	s.RegisterEntry(ik(1), 3)
	if w, ok := s.PickLocation(ik(1), 3); !ok || w != 3 {
		t.Fatalf("PickLocation local = %v %v", w, ok)
	}
	if w, ok := s.PickLocation(ik(1), 2); !ok || w != 0 {
		t.Fatalf("PickLocation remote = %v %v, want lowest ID", w, ok)
	}
	if _, ok := s.PickLocation(ik(9), 0); ok {
		t.Fatal("absent key should not resolve")
	}
}

func TestLocationsEmptyIsNil(t *testing.T) {
	s := New(300)
	if s.Locations(uk(1)) != nil {
		t.Fatal("absent key should have nil locations")
	}
}

func TestPruneCold(t *testing.T) {
	s := New(60)
	s.RecordAccess(uk(1), 0)
	for i := 0; i < 20; i++ {
		s.RecordAccess(uk(2), 1000+float64(i))
	}
	pruned := s.PruneCold(1020, 0.01)
	if pruned != 1 {
		t.Fatalf("pruned %d, want 1 (only the stale user)", pruned)
	}
	if s.Hotness(uk(2), 1020) == 0 {
		t.Fatal("hot user pruned")
	}
	if s.Hotness(uk(1), 1020) != 0 {
		t.Fatal("cold user not pruned")
	}
}

func TestUnregisterWorkerBulk(t *testing.T) {
	s := New(300)
	s.RegisterEntry(ik(1), 0)
	s.RegisterEntry(ik(2), 0)
	s.RegisterEntry(ik(2), 1) // replicated: survives on worker 1
	s.RegisterEntry(uk(7), 0)
	s.RegisterEntry(ik(9), 1) // not on worker 0

	keys := s.UnregisterWorker(0)
	if len(keys) != 3 {
		t.Fatalf("purged %d keys, want 3: %v", len(keys), keys)
	}
	// Sorted: users before items (UserEntry < ItemEntry), then by ID.
	want := []kvcache.EntryKey{uk(7), ik(1), ik(2)}
	for i, k := range want {
		if keys[i] != k {
			t.Fatalf("keys[%d] = %v, want %v", i, keys[i], k)
		}
	}
	if s.HasEntry(ik(1)) || s.HasEntry(uk(7)) {
		t.Fatal("purged entries still indexed")
	}
	if locs := s.Locations(ik(2)); len(locs) != 1 || locs[0] != 1 {
		t.Fatalf("replicated entry locations %v, want [1]", locs)
	}
	if !s.HasEntry(ik(9)) {
		t.Fatal("unrelated entry purged")
	}
	if keys := s.UnregisterWorker(0); len(keys) != 0 {
		t.Fatalf("second purge removed %v", keys)
	}
}
