package textenc

import (
	"fmt"
	"strings"
)

// Catalog synthesizes item description text whose encoded length matches a
// dataset's Table 1 average — the corpus the offline pre-encoding pass runs
// over. Descriptions are deterministic in (seed, item) and share brand and
// category words within a category, which is what makes attribute tokens
// recur across items the way real catalogs do.
type Catalog struct {
	seed       uint64
	categories []string
	brands     []string
	adjectives []string
	nouns      []string
	sellers    []string
	// ExtraAttrWords pads descriptions toward a target token count.
	ExtraAttrWords int
}

// NewCatalog builds a catalog generator. extraAttrWords tunes description
// length: the base template encodes to ~8 tokens, each extra word adds one.
func NewCatalog(seed int64, extraAttrWords int) *Catalog {
	if extraAttrWords < 0 {
		extraAttrWords = 0
	}
	return &Catalog{
		seed: uint64(seed),
		categories: []string{
			"electronics", "beauty", "books", "games", "kitchen", "outdoors",
			"fashion", "toys", "office", "health", "garden", "automotive",
		},
		brands: []string{
			"acme", "northwind", "solstice", "orbit", "cascade", "lumen",
			"harbor", "atlas", "ember", "vertex", "quill", "meridian",
		},
		adjectives: []string{
			"wireless", "organic", "compact", "deluxe", "portable", "classic",
			"premium", "ergonomic", "vintage", "ultra", "smart", "eco",
		},
		nouns: []string{
			"headphones", "serum", "novel", "controller", "blender", "tent",
			"jacket", "puzzle", "desk", "vitamins", "planter", "charger",
		},
		sellers: []string{
			"stellar-goods", "prime-depot", "corner-shop", "mega-mart",
			"boutique-co", "daily-deals", "trade-post", "garden-gate",
		},
		ExtraAttrWords: extraAttrWords,
	}
}

func (c *Catalog) pick(list []string, item uint64, salt uint64) string {
	return list[mix64(c.seed^salt^item*0x9e3779b97f4a7c15)%uint64(len(list))]
}

// Category returns the item's category word (stable per item).
func (c *Catalog) Category(item uint64) string { return c.pick(c.categories, item, 0xca7) }

// ItemText synthesizes an item's description: title, brand, category, and
// seller fields (§2.2's item profile attributes), plus padding attributes.
func (c *Catalog) ItemText(item uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s by %s category %s seller %s",
		c.pick(c.adjectives, item, 0xad), c.pick(c.adjectives, item, 0xad2),
		c.pick(c.nouns, item, 0x40), c.pick(c.brands, item, 0xb4),
		c.Category(item), c.pick(c.sellers, item, 0x5e))
	for k := 0; k < c.ExtraAttrWords; k++ {
		fmt.Fprintf(&b, " %s", c.pick(c.adjectives, item, 0xeea+uint64(k)))
	}
	return b.String()
}

// UserText synthesizes a user profile line from their interaction history:
// static attributes plus the categories of consumed items (§2.2's user
// profile composition).
func (c *Catalog) UserText(user uint64, history []uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "user %d region %s interests", user, c.pick(c.sellers, user, 0x9))
	for _, it := range history {
		fmt.Fprintf(&b, " %s %s", c.Category(it), c.pick(c.nouns, it, 0x40))
	}
	return b.String()
}

// BuildVocab registers every word the catalog can emit, returning a closed
// vocabulary (no OOV at serving time for catalog text).
func (c *Catalog) BuildVocab(unkBuckets int) (*Vocab, error) {
	v, err := NewVocab(unkBuckets)
	if err != nil {
		return nil, err
	}
	for _, list := range [][]string{c.categories, c.brands, c.adjectives, c.nouns, c.sellers} {
		for _, w := range list {
			v.Add(w)
		}
	}
	for _, w := range []string{"by", "category", "seller", "user", "region", "interests"} {
		v.Add(w)
	}
	return v, nil
}

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
