// Package textenc implements the pre-encoding stage of the serving pipeline
// (§5.1: "The user profile, item description, and system instructions are
// pre-encoded into tokens and stored"): a deterministic word-level tokenizer
// with hashed out-of-vocabulary buckets, and a synthetic catalog generator
// whose item descriptions encode to the Table 1 token-count statistics.
package textenc

import (
	"fmt"
	"strings"
)

// Vocab is a word-level vocabulary. Known words get dense IDs in
// registration order; unknown words hash into a fixed bucket range, the
// standard trick for unbounded production vocabularies.
type Vocab struct {
	words      map[string]int
	list       []string
	unkBuckets int
}

// NewVocab builds an empty vocabulary with the given OOV bucket count.
func NewVocab(unkBuckets int) (*Vocab, error) {
	if unkBuckets <= 0 {
		return nil, fmt.Errorf("textenc: need at least one OOV bucket")
	}
	return &Vocab{words: make(map[string]int), unkBuckets: unkBuckets}, nil
}

// Add registers a word (idempotently) and returns its token ID.
func (v *Vocab) Add(word string) int {
	w := Normalize(word)
	if id, ok := v.words[w]; ok {
		return id
	}
	id := v.unkBuckets + len(v.list)
	v.words[w] = id
	v.list = append(v.list, w)
	return id
}

// Token returns the word's ID: its dense ID if registered, otherwise a
// stable OOV bucket in [0, unkBuckets).
func (v *Vocab) Token(word string) int {
	w := Normalize(word)
	if id, ok := v.words[w]; ok {
		return id
	}
	return int(hashWord(w) % uint64(v.unkBuckets))
}

// Known reports whether the word is registered.
func (v *Vocab) Known(word string) bool {
	_, ok := v.words[Normalize(word)]
	return ok
}

// Word reverses a dense token ID; OOV buckets are not reversible.
func (v *Vocab) Word(id int) (string, bool) {
	idx := id - v.unkBuckets
	if idx < 0 || idx >= len(v.list) {
		return "", false
	}
	return v.list[idx], true
}

// Size returns the total token space: OOV buckets plus registered words.
func (v *Vocab) Size() int { return v.unkBuckets + len(v.list) }

// Encode tokenizes text: normalization, whitespace split, one token per
// word.
func (v *Vocab) Encode(text string) []int {
	fields := Fields(text)
	out := make([]int, len(fields))
	for i, w := range fields {
		out[i] = v.Token(w)
	}
	return out
}

// EncodeAdding is Encode but registers unseen words first — the offline
// vocabulary-building pass.
func (v *Vocab) EncodeAdding(text string) []int {
	fields := Fields(text)
	out := make([]int, len(fields))
	for i, w := range fields {
		out[i] = v.Add(w)
	}
	return out
}

// Normalize lowercases a word and strips surrounding punctuation.
func Normalize(word string) string {
	return strings.Trim(strings.ToLower(word), ".,;:!?()[]{}\"'—–-")
}

// Fields splits text into normalized non-empty words.
func Fields(text string) []string {
	var out []string
	for _, f := range strings.Fields(text) {
		if w := Normalize(f); w != "" {
			out = append(out, w)
		}
	}
	return out
}

// hashWord is FNV-1a.
func hashWord(w string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(w); i++ {
		h ^= uint64(w[i])
		h *= 1099511628211
	}
	return h
}
