package textenc

import (
	"testing"
	"testing/quick"
)

func TestNewVocabValidation(t *testing.T) {
	if _, err := NewVocab(0); err == nil {
		t.Fatal("zero buckets accepted")
	}
}

func TestVocabAddAndToken(t *testing.T) {
	v, err := NewVocab(16)
	if err != nil {
		t.Fatal(err)
	}
	id := v.Add("Wireless")
	if id < 16 {
		t.Fatalf("dense ID %d collides with OOV buckets", id)
	}
	if v.Add("wireless") != id {
		t.Fatal("Add must be idempotent under normalization")
	}
	if v.Token("WIRELESS.") != id {
		t.Fatal("Token must normalize")
	}
	if w, ok := v.Word(id); !ok || w != "wireless" {
		t.Fatalf("Word(%d) = %q, %v", id, w, ok)
	}
	if !v.Known("wireless") || v.Known("absent") {
		t.Fatal("Known wrong")
	}
}

func TestVocabOOVStableAndBucketed(t *testing.T) {
	v, err := NewVocab(8)
	if err != nil {
		t.Fatal(err)
	}
	a := v.Token("neverseen")
	if a < 0 || a >= 8 {
		t.Fatalf("OOV token %d outside buckets", a)
	}
	if v.Token("neverseen") != a {
		t.Fatal("OOV token not stable")
	}
	if _, ok := v.Word(a); ok {
		t.Fatal("OOV bucket should not reverse")
	}
}

func TestEncodeMatchesFields(t *testing.T) {
	v, err := NewVocab(4)
	if err != nil {
		t.Fatal(err)
	}
	text := "Premium, Wireless Headphones!"
	ids := v.EncodeAdding(text)
	if len(ids) != 3 {
		t.Fatalf("%d tokens", len(ids))
	}
	again := v.Encode(text)
	for i := range ids {
		if ids[i] != again[i] {
			t.Fatal("Encode after EncodeAdding differs")
		}
	}
	if v.Size() != 4+3 {
		t.Fatalf("size %d", v.Size())
	}
}

func TestNormalizeAndFields(t *testing.T) {
	if Normalize("--Hello!?") != "hello" {
		t.Fatalf("Normalize = %q", Normalize("--Hello!?"))
	}
	fields := Fields("  One, two!  — three ")
	if len(fields) != 3 || fields[0] != "one" || fields[2] != "three" {
		t.Fatalf("Fields = %v", fields)
	}
}

func TestVocabEncodeProperty(t *testing.T) {
	v, err := NewVocab(32)
	if err != nil {
		t.Fatal(err)
	}
	f := func(words []string) bool {
		for _, w := range words {
			ids := v.Encode(w)
			for _, id := range ids {
				if id < 0 || id >= v.Size() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogDeterministicAndShared(t *testing.T) {
	c := NewCatalog(7, 2)
	if c.ItemText(5) != c.ItemText(5) {
		t.Fatal("item text not deterministic")
	}
	if c.ItemText(5) == c.ItemText(6) {
		t.Fatal("distinct items share text")
	}
	other := NewCatalog(8, 2)
	if c.ItemText(5) == other.ItemText(5) {
		t.Fatal("different seeds should differ")
	}
	// Category is stable and drawn from the fixed list.
	if c.Category(5) != c.Category(5) {
		t.Fatal("category unstable")
	}
}

// TestCatalogTokenCountsMatchTable1: extraAttrWords calibrates encoded
// description length onto the Table 1 averages.
func TestCatalogTokenCountsMatchTable1(t *testing.T) {
	cases := []struct {
		dataset string
		extra   int
		want    int // Table 1 "Ave. Item Token Num."
	}{
		{"Industry", 1, 10},
		{"Games", 2, 11},
		{"Books", 6, 15},
		{"Beauty", 9, 18},
	}
	for _, tc := range cases {
		c := NewCatalog(3, tc.extra)
		v, err := c.BuildVocab(16)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		const n = 500
		for it := uint64(0); it < n; it++ {
			total += len(v.Encode(c.ItemText(it)))
		}
		avg := float64(total) / n
		if avg < float64(tc.want)-1.5 || avg > float64(tc.want)+1.5 {
			t.Errorf("%s: avg encoded length %.1f, want ~%d", tc.dataset, avg, tc.want)
		}
	}
}

func TestCatalogVocabClosed(t *testing.T) {
	c := NewCatalog(3, 4)
	v, err := c.BuildVocab(16)
	if err != nil {
		t.Fatal(err)
	}
	// Every catalog word must be known (no OOV at serving time).
	for it := uint64(0); it < 200; it++ {
		for _, w := range Fields(c.ItemText(it)) {
			if !v.Known(w) {
				t.Fatalf("catalog word %q not in vocab", w)
			}
		}
	}
	// User text contains the numeric user ID, which hashes to OOV — by
	// design (IDs are unbounded).
	ids := v.Encode(c.UserText(42, []uint64{1, 2}))
	if len(ids) == 0 {
		t.Fatal("user text encoded to nothing")
	}
}

func TestUserTextReflectsHistory(t *testing.T) {
	c := NewCatalog(3, 0)
	short := c.UserText(1, []uint64{1})
	long := c.UserText(1, []uint64{1, 2, 3, 4, 5, 6, 7, 8})
	if len(Fields(long)) <= len(Fields(short)) {
		t.Fatal("longer history should produce more tokens")
	}
}
