// Package admission implements the serving stack's overload-control ladder
// — admit, degrade, shed — shared by the single-process server and the
// disaggregated frontend. A Controller bounds concurrent request work with a
// semaphore and a small bounded wait queue: requests that find a free slot
// run immediately, requests that find the queue full (or whose deadline
// expires while queued) are shed with 429 + Retry-After instead of piling up
// unbounded. Per-request deadlines arrive in the Deadline-Ms header (falling
// back to a configured default) and ride the request context through
// ranking, model execution, and the transfer engine, so a shed or
// disconnected request stops consuming resources everywhere at once.
package admission

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// DeadlineHeader carries a request's latency budget in milliseconds.
const DeadlineHeader = "Deadline-Ms"

// ShedReasonHeader reports why a 429 was shed ("queue-full" | "deadline").
const ShedReasonHeader = "X-Shed-Reason"

// Shed reasons, also used as degrade reasons by the serving stacks.
const (
	ReasonQueueFull = "queue-full"
	ReasonDeadline  = "deadline"
)

// ErrQueueFull reports a request shed because the wait queue was at
// capacity; ErrDeadline one shed because its context ended while queued.
var (
	ErrQueueFull = errors.New("admission: queue full")
	ErrDeadline  = errors.New("admission: deadline exhausted while queued")
)

// Config tunes a Controller. The zero value means "use defaults".
type Config struct {
	// MaxInFlight bounds concurrently admitted requests (default 4).
	MaxInFlight int
	// MaxQueue bounds requests waiting for a slot (default 2×MaxInFlight).
	// Negative disables queueing entirely: busy means shed.
	MaxQueue int
	// DefaultDeadline applies when a request carries no Deadline-Ms header
	// (default 5s).
	DefaultDeadline time.Duration
	// DegradeQueueDepth is the queue depth at which admitted requests should
	// be served degraded rather than in full (default max(1, MaxQueue/2)).
	DegradeQueueDepth int
	// RetryAfter is the backoff advertised on shed responses (default 1s).
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 5 * time.Second
	}
	if c.DegradeQueueDepth <= 0 {
		c.DegradeQueueDepth = c.MaxQueue / 2
		if c.DegradeQueueDepth < 1 {
			c.DegradeQueueDepth = 1
		}
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Controller is the admission gate for one serving endpoint.
type Controller struct {
	cfg   Config
	slots chan struct{}

	mu            sync.Mutex
	queued        int
	admitted      int64
	enqueued      int64
	shedQueueFull int64
	shedDeadline  int64
}

// NewController builds a controller from cfg (zero value = defaults).
func NewController(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{cfg: cfg, slots: make(chan struct{}, cfg.MaxInFlight)}
}

// Config returns the resolved (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Grant is one admitted request's ticket.
type Grant struct {
	// QueuedBehind is how many requests were already waiting when this one
	// arrived (0 = it got a slot immediately); the degrade ladder keys off
	// the depth seen at entry so pressure decisions don't race the dequeue.
	QueuedBehind int
	// Waited is the time spent in the queue.
	Waited time.Duration

	release func()
	once    sync.Once
}

// Release frees the slot. Safe to call more than once.
func (g *Grant) Release() { g.once.Do(g.release) }

// Acquire admits the request, waiting in the bounded queue if necessary.
// It sheds with ErrQueueFull when the queue is at capacity and with
// ErrDeadline when ctx ends before a slot frees.
func (c *Controller) Acquire(ctx context.Context) (*Grant, error) {
	release := func() { <-c.slots }
	select {
	case c.slots <- struct{}{}:
		c.mu.Lock()
		c.admitted++
		c.mu.Unlock()
		return &Grant{release: release}, nil
	default:
	}

	c.mu.Lock()
	if c.queued >= c.cfg.MaxQueue {
		c.shedQueueFull++
		c.mu.Unlock()
		return nil, ErrQueueFull
	}
	behind := c.queued
	c.queued++
	c.enqueued++
	c.mu.Unlock()

	start := time.Now()
	select {
	case c.slots <- struct{}{}:
		c.mu.Lock()
		c.queued--
		c.admitted++
		c.mu.Unlock()
		return &Grant{QueuedBehind: behind, Waited: time.Since(start), release: release}, nil
	case <-ctx.Done():
		c.mu.Lock()
		c.queued--
		c.shedDeadline++
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrDeadline, ctx.Err())
	}
}

// QueueDepth returns the current number of waiting requests.
func (c *Controller) QueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queued
}

// ShouldDegrade reports whether a request that saw queuedBehind waiters at
// entry should be served degraded (the middle rung of the ladder).
func (c *Controller) ShouldDegrade(queuedBehind int) bool {
	if queuedBehind >= c.cfg.DegradeQueueDepth {
		return true
	}
	return c.QueueDepth() >= c.cfg.DegradeQueueDepth
}

// Deadline resolves a request's latency budget: the Deadline-Ms header when
// present and positive, the configured default otherwise.
func (c *Controller) Deadline(r *http.Request) time.Duration {
	if h := r.Header.Get(DeadlineHeader); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	return c.cfg.DefaultDeadline
}

// Shed writes the 429 response for a rejected request: Retry-After with the
// configured backoff and X-Shed-Reason naming the ladder rung that fired.
// Retry-After carries whole seconds (RFC 9110), so fractional backoffs round
// UP — truncation would turn a 300ms backoff into "0" and invite an
// immediate retry storm from well-behaved clients.
func (c *Controller) Shed(w http.ResponseWriter, reason string) {
	secs := int(math.Ceil(c.cfg.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set(ShedReasonHeader, reason)
	http.Error(w, "overloaded: "+reason, http.StatusTooManyRequests)
}

// Stats is a counter snapshot for the serving stats endpoints.
type Stats struct {
	MaxInFlight   int   `json:"max_in_flight"`
	MaxQueue      int   `json:"max_queue"`
	InFlight      int   `json:"in_flight"`
	QueueDepth    int   `json:"queue_depth"`
	Admitted      int64 `json:"admitted"`
	Queued        int64 `json:"queued"`
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedDeadline  int64 `json:"shed_deadline"`
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		MaxInFlight:   c.cfg.MaxInFlight,
		MaxQueue:      c.cfg.MaxQueue,
		InFlight:      len(c.slots),
		QueueDepth:    c.queued,
		Admitted:      c.admitted,
		Queued:        c.enqueued,
		ShedQueueFull: c.shedQueueFull,
		ShedDeadline:  c.shedDeadline,
	}
}
