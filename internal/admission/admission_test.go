package admission

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestAcquireReleaseAndCounters(t *testing.T) {
	c := NewController(Config{MaxInFlight: 2, MaxQueue: 2})
	g1, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.InFlight != 2 || st.Admitted != 2 {
		t.Fatalf("stats %+v", st)
	}
	g1.Release()
	g1.Release() // idempotent
	g2.Release()
	if st := c.Stats(); st.InFlight != 0 {
		t.Fatalf("slots leaked: %+v", st)
	}
}

func TestQueueFullSheds(t *testing.T) {
	c := NewController(Config{MaxInFlight: 1, MaxQueue: -1}) // no queue
	g, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("busy controller admitted: %v", err)
	}
	if st := c.Stats(); st.ShedQueueFull != 1 {
		t.Fatalf("shed not counted: %+v", st)
	}
}

func TestDeadlineExpiresWhileQueued(t *testing.T) {
	c := NewController(Config{MaxInFlight: 1, MaxQueue: 4})
	g, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Acquire(ctx); !errors.Is(err, ErrDeadline) {
		t.Fatalf("queued request outlived its deadline: %v", err)
	}
	st := c.Stats()
	if st.ShedDeadline != 1 || st.QueueDepth != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestQueuedRequestRunsWhenSlotFrees(t *testing.T) {
	c := NewController(Config{MaxInFlight: 1, MaxQueue: 4})
	g, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var queuedBehind int
	go func() {
		defer wg.Done()
		g2, err := c.Acquire(context.Background())
		if err != nil {
			t.Error(err)
			return
		}
		queuedBehind = g2.QueuedBehind
		g2.Release()
	}()
	for c.QueueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	g.Release()
	wg.Wait()
	if queuedBehind != 0 {
		t.Fatalf("first waiter saw %d ahead of it", queuedBehind)
	}
	if st := c.Stats(); st.Queued != 1 || st.Admitted != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestShouldDegradeUsesEntryDepth(t *testing.T) {
	c := NewController(Config{MaxInFlight: 1, MaxQueue: 4, DegradeQueueDepth: 2})
	if c.ShouldDegrade(1) {
		t.Fatal("degraded below threshold")
	}
	if !c.ShouldDegrade(2) {
		t.Fatal("entry depth at threshold not degraded")
	}
}

func TestDeadlineHeader(t *testing.T) {
	c := NewController(Config{DefaultDeadline: 3 * time.Second})
	r := httptest.NewRequest(http.MethodPost, "/v1/rank", nil)
	if d := c.Deadline(r); d != 3*time.Second {
		t.Fatalf("default deadline %v", d)
	}
	r.Header.Set(DeadlineHeader, "250")
	if d := c.Deadline(r); d != 250*time.Millisecond {
		t.Fatalf("header deadline %v", d)
	}
	r.Header.Set(DeadlineHeader, "not-a-number")
	if d := c.Deadline(r); d != 3*time.Second {
		t.Fatalf("malformed header deadline %v", d)
	}
	r.Header.Set(DeadlineHeader, "-5")
	if d := c.Deadline(r); d != 3*time.Second {
		t.Fatalf("negative header deadline %v", d)
	}
}

func TestShedResponse(t *testing.T) {
	c := NewController(Config{RetryAfter: 2 * time.Second})
	rec := httptest.NewRecorder()
	c.Shed(rec, ReasonQueueFull)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "2" {
		t.Fatalf("Retry-After %q", rec.Header().Get("Retry-After"))
	}
	if rec.Header().Get(ShedReasonHeader) != ReasonQueueFull {
		t.Fatalf("reason %q", rec.Header().Get(ShedReasonHeader))
	}
}

// Retry-After must round fractional backoffs up: "0" tells well-behaved
// clients to retry immediately, which defeats the backoff entirely.
func TestShedRetryAfterRoundsUp(t *testing.T) {
	cases := []struct {
		backoff time.Duration
		want    string
	}{
		{300 * time.Millisecond, "1"},
		{999 * time.Millisecond, "1"},
		{1500 * time.Millisecond, "2"},
		{0, "1"}, // zero config falls back to the 1s floor
	}
	for _, tc := range cases {
		c := NewController(Config{RetryAfter: tc.backoff})
		rec := httptest.NewRecorder()
		c.Shed(rec, ReasonQueueFull)
		if got := rec.Header().Get("Retry-After"); got != tc.want {
			t.Errorf("RetryAfter=%v: Retry-After %q, want %q", tc.backoff, got, tc.want)
		}
	}
}
