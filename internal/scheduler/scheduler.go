// Package scheduler implements prompt scheduling: the per-request choice
// between User-as-prefix and Item-as-prefix attention (§5.3). It provides
// the paper's hotness-aware policy, the cache-agnostic greedy baseline, and
// the static policies used as evaluation baselines (RE, UP, IP).
package scheduler

import "bat/internal/bipartite"

// Context is the cache state the scheduler sees for one request, assembled
// from the cache meta service and the serving node's user pool.
type Context struct {
	// UserTokens and ItemTokens are the request's prompt composition
	// (τ_u(r) and τ_i(r) in the paper's decision rule).
	UserTokens, ItemTokens int
	// UserHotness is the sliding-window frequency estimate f_u(r).
	UserHotness float64
	// UserCached reports whether this user's prefix is already resident.
	UserCached bool
	// MinCachedHotness is min_{p∈C_u} f_p over cached user pages, valid only
	// when HaveMinCachedHotness is true (the pool may be empty).
	MinCachedHotness     float64
	HaveMinCachedHotness bool
	// UserPoolHasSpace reports whether the user area can admit this user's
	// prefix without evicting anything.
	UserPoolHasSpace bool
	// CachedItemTokens is how many of this request's candidate tokens are
	// resident anywhere in the item pool (local or remote). Populated only
	// for policies implementing CostAware — it costs a per-candidate lookup.
	CachedItemTokens int
}

// CostAware marks policies that need Context.CachedItemTokens resolved
// before deciding (an extra O(candidates) placement lookup per request).
type CostAware interface {
	NeedsItemHitTokens() bool
}

// Decision is the scheduler's output for one request.
type Decision struct {
	// Kind is the chosen prompt organization.
	Kind bipartite.PrefixKind
	// Recompute disables prefix caching entirely (the RE baseline).
	Recompute bool
	// AdmitUser requests that the user's prefix be (re)admitted to the user
	// cache after computation.
	AdmitUser bool
}

// Policy decides the attention pattern for each request.
type Policy interface {
	Name() string
	Decide(Context) Decision
}

// Recompute is the RE baseline: no prefix caching.
type Recompute struct{}

// Name implements Policy.
func (Recompute) Name() string { return "RE" }

// Decide implements Policy.
func (Recompute) Decide(Context) Decision {
	return Decision{Kind: bipartite.UserPrefix, Recompute: true}
}

// StaticUser is the UP baseline: User-as-prefix for every request, LRU-style
// unconditional admission — the conventional approach in existing GR systems.
type StaticUser struct{}

// Name implements Policy.
func (StaticUser) Name() string { return "UP" }

// Decide implements Policy.
func (StaticUser) Decide(Context) Decision {
	return Decision{Kind: bipartite.UserPrefix, AdmitUser: true}
}

// StaticItem is the IP baseline: Item-as-prefix for every request.
type StaticItem struct{}

// Name implements Policy.
func (StaticItem) Name() string { return "IP" }

// Decide implements Policy.
func (StaticItem) Decide(Context) Decision {
	return Decision{Kind: bipartite.ItemPrefix}
}

// CacheAgnostic is the strawman of §5.3: pick whichever side has more
// tokens, ignoring cache state, and always admit chosen users.
type CacheAgnostic struct{}

// Name implements Policy.
func (CacheAgnostic) Name() string { return "cache-agnostic" }

// Decide implements Policy.
func (CacheAgnostic) Decide(c Context) Decision {
	if c.UserTokens >= c.ItemTokens {
		return Decision{Kind: bipartite.UserPrefix, AdmitUser: true}
	}
	return Decision{Kind: bipartite.ItemPrefix}
}

// GreedyOracle is a clairvoyant-greedy upper-bound baseline: it inspects the
// true cache state of both sides and picks whichever prefix minimizes this
// request's computed tokens. It is "oracle" about the present but myopic
// about the future — it performs no admission control, so comparing it with
// the hotness-aware policy isolates how much of BAT's win comes from cache
// retention decisions rather than per-request cost minimization.
type GreedyOracle struct{}

// Name implements Policy.
func (GreedyOracle) Name() string { return "greedy-oracle" }

// NeedsItemHitTokens implements CostAware.
func (GreedyOracle) NeedsItemHitTokens() bool { return true }

// Decide implements Policy.
func (GreedyOracle) Decide(c Context) Decision {
	userSaved := 0
	if c.UserCached {
		userSaved = c.UserTokens
	}
	if userSaved >= c.CachedItemTokens {
		return Decision{Kind: bipartite.UserPrefix, AdmitUser: true}
	}
	return Decision{Kind: bipartite.ItemPrefix}
}

// HotnessAware is the paper's policy (§5.3):
//
//	prefix(r) = user  if τ_u(r) ≥ τ_i(r) ∧ f_u(r) > min_{p∈C_u} f_p
//	            item  otherwise
//
// A resident user cache is always used when the user side is at least as
// large (the access itself keeps the entry hot); and when the user area has
// free space the admission threshold is vacuous.
type HotnessAware struct{}

// Name implements Policy.
func (HotnessAware) Name() string { return "hotness-aware" }

// Decide implements Policy.
func (HotnessAware) Decide(c Context) Decision {
	if c.UserTokens < c.ItemTokens {
		return Decision{Kind: bipartite.ItemPrefix}
	}
	if c.UserCached {
		return Decision{Kind: bipartite.UserPrefix, AdmitUser: true}
	}
	if c.UserPoolHasSpace || !c.HaveMinCachedHotness || c.UserHotness > c.MinCachedHotness {
		return Decision{Kind: bipartite.UserPrefix, AdmitUser: true}
	}
	return Decision{Kind: bipartite.ItemPrefix}
}
