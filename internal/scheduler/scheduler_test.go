package scheduler

import (
	"testing"

	"bat/internal/bipartite"
)

func TestPolicyNames(t *testing.T) {
	cases := map[string]Policy{
		"RE":             Recompute{},
		"UP":             StaticUser{},
		"IP":             StaticItem{},
		"cache-agnostic": CacheAgnostic{},
		"hotness-aware":  HotnessAware{},
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("%T.Name() = %q, want %q", p, p.Name(), want)
		}
	}
}

func TestRecompute(t *testing.T) {
	d := Recompute{}.Decide(Context{UserTokens: 5000, ItemTokens: 1000})
	if !d.Recompute || d.AdmitUser {
		t.Fatalf("RE decision: %+v", d)
	}
}

func TestStaticPolicies(t *testing.T) {
	up := StaticUser{}.Decide(Context{UserTokens: 10, ItemTokens: 1000})
	if up.Kind != bipartite.UserPrefix || !up.AdmitUser || up.Recompute {
		t.Fatalf("UP decision: %+v", up)
	}
	ip := StaticItem{}.Decide(Context{UserTokens: 5000, ItemTokens: 10})
	if ip.Kind != bipartite.ItemPrefix || ip.AdmitUser {
		t.Fatalf("IP decision: %+v", ip)
	}
}

func TestCacheAgnosticPicksLargerSide(t *testing.T) {
	big := CacheAgnostic{}.Decide(Context{UserTokens: 2000, ItemTokens: 1000})
	if big.Kind != bipartite.UserPrefix || !big.AdmitUser {
		t.Fatalf("long user: %+v", big)
	}
	small := CacheAgnostic{}.Decide(Context{UserTokens: 500, ItemTokens: 1000})
	if small.Kind != bipartite.ItemPrefix {
		t.Fatalf("short user: %+v", small)
	}
	// Cache state must be ignored.
	ignored := CacheAgnostic{}.Decide(Context{
		UserTokens: 2000, ItemTokens: 1000,
		HaveMinCachedHotness: true, MinCachedHotness: 100, UserHotness: 0,
	})
	if ignored.Kind != bipartite.UserPrefix {
		t.Fatal("cache-agnostic policy must not consult hotness")
	}
}

func TestHotnessAwareShortUserGoesItem(t *testing.T) {
	// §5.3: fewer user tokens than item tokens → Item-as-prefix directly,
	// even for a very hot user.
	d := HotnessAware{}.Decide(Context{
		UserTokens: 800, ItemTokens: 1000, UserHotness: 50,
		UserPoolHasSpace: true,
	})
	if d.Kind != bipartite.ItemPrefix {
		t.Fatalf("short hot user: %+v", d)
	}
}

func TestHotnessAwareAdmissionThreshold(t *testing.T) {
	base := Context{
		UserTokens: 2000, ItemTokens: 1000,
		HaveMinCachedHotness: true, MinCachedHotness: 3,
	}
	cold := base
	cold.UserHotness = 1
	if d := (HotnessAware{}).Decide(cold); d.Kind != bipartite.ItemPrefix {
		t.Fatalf("cold user should fall back to item prefix: %+v", d)
	}
	hot := base
	hot.UserHotness = 5
	d := HotnessAware{}.Decide(hot)
	if d.Kind != bipartite.UserPrefix || !d.AdmitUser {
		t.Fatalf("hot user should replace coldest cached user: %+v", d)
	}
}

func TestHotnessAwareResidentUserServed(t *testing.T) {
	// A resident cache is used regardless of the admission threshold.
	d := HotnessAware{}.Decide(Context{
		UserTokens: 2000, ItemTokens: 1000, UserCached: true,
		HaveMinCachedHotness: true, MinCachedHotness: 100, UserHotness: 0.1,
	})
	if d.Kind != bipartite.UserPrefix || !d.AdmitUser {
		t.Fatalf("resident user: %+v", d)
	}
}

func TestHotnessAwareFreeSpaceAdmits(t *testing.T) {
	d := HotnessAware{}.Decide(Context{
		UserTokens: 2000, ItemTokens: 1000, UserHotness: 0.1,
		UserPoolHasSpace:     true,
		HaveMinCachedHotness: true, MinCachedHotness: 100,
	})
	if d.Kind != bipartite.UserPrefix {
		t.Fatalf("free space should admit: %+v", d)
	}
}

func TestHotnessAwareEmptyPoolAdmits(t *testing.T) {
	d := HotnessAware{}.Decide(Context{
		UserTokens: 2000, ItemTokens: 1000, UserHotness: 0.1,
	})
	if d.Kind != bipartite.UserPrefix || !d.AdmitUser {
		t.Fatalf("empty pool should admit: %+v", d)
	}
}

func TestGreedyOracle(t *testing.T) {
	var p Policy = GreedyOracle{}
	if p.Name() != "greedy-oracle" {
		t.Fatalf("name %q", p.Name())
	}
	ca, ok := p.(CostAware)
	if !ok || !ca.NeedsItemHitTokens() {
		t.Fatal("oracle must request item hit tokens")
	}
	// Cached user beats a half-cached item set.
	d := GreedyOracle{}.Decide(Context{UserTokens: 1500, ItemTokens: 1000, UserCached: true, CachedItemTokens: 700})
	if d.Kind != bipartite.UserPrefix || !d.AdmitUser {
		t.Fatalf("cached user: %+v", d)
	}
	// Uncached user loses to any cached items.
	d = GreedyOracle{}.Decide(Context{UserTokens: 1500, ItemTokens: 1000, CachedItemTokens: 10})
	if d.Kind != bipartite.ItemPrefix {
		t.Fatalf("uncached user: %+v", d)
	}
	// Total cold start warms the user cache.
	d = GreedyOracle{}.Decide(Context{UserTokens: 1500, ItemTokens: 1000})
	if d.Kind != bipartite.UserPrefix || !d.AdmitUser {
		t.Fatalf("cold start: %+v", d)
	}
}

func TestNonCostAwarePolicies(t *testing.T) {
	for _, p := range []Policy{Recompute{}, StaticUser{}, StaticItem{}, CacheAgnostic{}, HotnessAware{}} {
		if _, ok := p.(CostAware); ok {
			t.Fatalf("%s should not be cost-aware", p.Name())
		}
	}
}
