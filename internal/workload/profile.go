// Package workload synthesizes the recommendation serving workloads the
// paper evaluates on: the three Amazon datasets and the Industry trace
// (Table 1), with Zipf-skewed item popularity, heavy-tailed user activity,
// log-normal user profile lengths, session-structured arrivals, and a
// retrieval substrate that assembles 100-candidate sets per request.
//
// Entity state is lazy: a user's token count or an item's length is derived
// deterministically from its ID and the generator seed, so a 100M-item
// corpus costs memory only for entities actually touched.
package workload

import "fmt"

// Profile describes a dataset/workload in the terms of Table 1 plus the
// distribution parameters the paper reports from its traces (§3.3, Fig. 2).
type Profile struct {
	Name  string
	Users int // user population
	Items int // item corpus size

	AvgUserTokens int // Table 1 "Ave. User Token Num."
	AvgItemTokens int // Table 1 "Ave. Item Token Num."

	// UserTokenSigma is the log-normal shape of profile lengths (Fig. 2b).
	UserTokenSigma float64
	// MaxUserTokens caps profiles so prompts stay under ~8K tokens (§6.2).
	MaxUserTokens int

	// ItemZipfA is the popularity exponent: ~1.08 puts ≈90% of accesses on
	// the top 10% of items (Fig. 2d).
	ItemZipfA float64
	// UserZipfA is the user-activity exponent (Fig. 2c: most users inactive).
	UserZipfA float64

	// Candidates is the retrieved candidate count per request (100 in §3.3).
	Candidates int
	// InstrTokens is the instruction suffix length, discriminant included.
	InstrTokens int

	// AffinityShare is the fraction of candidates drawn from the user's
	// stable interest set rather than global popularity.
	AffinityShare float64
	// AffinitySetSize is the size of that per-user interest set.
	AffinitySetSize int

	// AvgSessionRequests is the mean requests per user session; SessionGapSec
	// the mean think time between a session's consecutive requests.
	AvgSessionRequests float64
	SessionGapSec      float64

	// Burst, when non-nil, injects a transient hotspot into retrieval
	// (§5.2's "burst hotspots that should be recommended to most users").
	Burst *Burst
}

// Burst describes a transient hotspot: during [StartSec, EndSec) a block of
// Items previously-cold items starting at FirstItem captures Share of every
// candidate retrieval.
type Burst struct {
	StartSec, EndSec float64
	FirstItem        ItemID
	Items            int
	Share            float64
	// ChurnSec, when positive, rotates the hot block every ChurnSec seconds:
	// epoch k (counted from StartSec) shifts the block start by k*Items
	// within [FirstItem, corpus), wrapping around. This models hot-item
	// churn — the previous epoch's hot block goes cold and a fresh block
	// heats up, the stress case for any static cache split.
	ChurnSec float64
}

// BlockStart returns the first item of the hot block active at time t,
// applying ChurnSec epoch rotation. Call only while Active(t).
func (b *Burst) BlockStart(t float64, corpus int) ItemID {
	if b.ChurnSec <= 0 {
		return b.FirstItem
	}
	epoch := uint64((t - b.StartSec) / b.ChurnSec)
	span := uint64(corpus) - uint64(b.FirstItem)
	return b.FirstItem + ItemID((epoch*uint64(b.Items))%span)
}

// Active reports whether the burst covers time t.
func (b *Burst) Active(t float64) bool {
	return b != nil && t >= b.StartSec && t < b.EndSec
}

func (b *Burst) validate(corpus int) error {
	switch {
	case b == nil:
		return nil
	case b.Items <= 0:
		return fmt.Errorf("workload: burst needs items")
	case b.Share < 0 || b.Share > 1:
		return fmt.Errorf("workload: burst share outside [0,1]")
	case b.EndSec <= b.StartSec:
		return fmt.Errorf("workload: burst interval empty")
	case int64(b.FirstItem)+int64(b.Items) > int64(corpus):
		return fmt.Errorf("workload: burst items outside corpus")
	case b.ChurnSec < 0:
		return fmt.Errorf("workload: burst churn must be non-negative")
	}
	return nil
}

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	switch {
	case p.Users <= 0 || p.Items <= 0:
		return fmt.Errorf("workload: %s: Users and Items must be positive", p.Name)
	case p.AvgUserTokens <= 0 || p.AvgItemTokens <= 0:
		return fmt.Errorf("workload: %s: token averages must be positive", p.Name)
	case p.MaxUserTokens < p.AvgUserTokens:
		return fmt.Errorf("workload: %s: MaxUserTokens below average", p.Name)
	case p.ItemZipfA <= 0 || p.UserZipfA <= 0:
		return fmt.Errorf("workload: %s: Zipf exponents must be positive", p.Name)
	case p.Candidates <= 0:
		return fmt.Errorf("workload: %s: Candidates must be positive", p.Name)
	case p.AffinityShare < 0 || p.AffinityShare > 1:
		return fmt.Errorf("workload: %s: AffinityShare outside [0,1]", p.Name)
	case p.AvgSessionRequests < 1:
		return fmt.Errorf("workload: %s: AvgSessionRequests must be >= 1", p.Name)
	case p.SessionGapSec <= 0:
		return fmt.Errorf("workload: %s: SessionGapSec must be positive", p.Name)
	}
	return p.Burst.validate(p.Items)
}

// AvgItemTokensPerRequest returns the expected candidate-token total of one
// prompt — the quantity the paper compares user profiles against when
// choosing a prefix (~1000 tokens for 100 items).
func (p Profile) AvgItemTokensPerRequest() int { return p.Candidates * p.AvgItemTokens }

func baseProfile() Profile {
	return Profile{
		UserTokenSigma:     0.6,
		ItemZipfA:          1.08,
		UserZipfA:          0.85,
		Candidates:         100,
		InstrTokens:        16,
		AffinityShare:      0.3,
		AffinitySetSize:    50,
		AvgSessionRequests: 3,
		SessionGapSec:      90,
	}
}

// Games, Beauty, Books, and Industry reproduce Table 1. The three Amazon
// profiles use the paper's expanded user-token lengths so the maximum prompt
// approaches 8K tokens (§6.2).
var (
	Games    = gamesProfile()
	Beauty   = beautyProfile()
	Books    = booksProfile()
	Industry = industryProfile()
)

func gamesProfile() Profile {
	p := baseProfile()
	p.Name = "Games"
	p.Users, p.Items = 15_000, 8_000
	p.AvgUserTokens, p.AvgItemTokens = 1245, 11
	p.MaxUserTokens = 6800
	// Small community with high average user access frequency (§6.2): a
	// concentrated active set returning in long sessions — the one dataset
	// where User-as-prefix wins.
	p.UserZipfA = 1.5
	p.AvgSessionRequests = 6
	p.SessionGapSec = 60
	return p
}

func beautyProfile() Profile {
	p := baseProfile()
	p.Name = "Beauty"
	p.Users, p.Items = 22_000, 12_000
	p.AvgUserTokens, p.AvgItemTokens = 2043, 18
	p.MaxUserTokens = 6200
	p.UserZipfA = 0.9
	return p
}

func booksProfile() Profile {
	p := baseProfile()
	p.Name = "Books"
	p.Users, p.Items = 510_000, 280_000
	p.AvgUserTokens, p.AvgItemTokens = 1586, 15
	p.MaxUserTokens = 6500
	p.UserZipfA = 0.9
	return p
}

func industryProfile() Profile {
	p := baseProfile()
	p.Name = "Industry"
	p.Users, p.Items = 10_000_000, 1_000_000
	p.AvgUserTokens, p.AvgItemTokens = 1500, 10
	p.MaxUserTokens = 7000
	p.UserZipfA = 1.0
	// Production advertising traffic: a majority of users issue one or two
	// requests per hour (Fig. 2c) with minutes between page views, so
	// profile caches rarely survive to the next access.
	p.AvgSessionRequests = 2
	p.SessionGapSec = 240
	return p
}

// IndustryX returns the Industry profile with an item corpus of the given
// size — the Industrial-X datasets of §6.6 (1M to 100M items).
func IndustryX(items int) Profile {
	p := industryProfile()
	p.Name = fmt.Sprintf("Industry-%s", formatCount(items))
	p.Items = items
	return p
}

// BooksX returns the Books profile with a resized item corpus — the Books-X
// datasets of the Table 4 ablation.
func BooksX(items int) Profile {
	p := booksProfile()
	p.Name = fmt.Sprintf("Books-%s", formatCount(items))
	p.Items = items
	return p
}

// Profiles returns the four Table 1 datasets in paper order.
func Profiles() []Profile { return []Profile{Games, Beauty, Books, Industry} }

func formatCount(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%dK", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}
