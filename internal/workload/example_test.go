package workload_test

import (
	"fmt"

	"bat/internal/workload"
)

// Example generates a slice of the Industry workload and inspects the
// distributional facts the serving experiments rely on.
func Example() {
	gen, err := workload.NewGenerator(workload.Industry, 11)
	if err != nil {
		fmt.Println(err)
		return
	}
	trace, err := gen.GenerateTrace(5000, 3600)
	if err != nil {
		fmt.Println(err)
		return
	}
	counts := map[workload.UserID]int{}
	for _, r := range trace.Requests {
		counts[r.User]++
	}
	once := 0
	for _, c := range counts {
		if c == 1 {
			once++
		}
	}
	fmt.Printf("requests: %d, distinct users: %v\n", len(trace.Requests), len(counts) > 1000)
	fmt.Printf("a majority-inactive tail exists: %v\n", float64(once)/float64(len(counts)) > 0.3)

	z := workload.NewZipf(workload.Industry.Items, workload.Industry.ItemZipfA)
	fmt.Printf("top 10%% of items hold ~%.0f%% of accesses\n", z.MassOfTopFraction(0.1)*100)
	// Output:
	// requests: 5000, distinct users: true
	// a majority-inactive tail exists: true
	// top 10% of items hold ~90% of accesses
}
