package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// UserID identifies a user; lower IDs are more active (ID = activity rank-1).
type UserID = uint64

// ItemID identifies an item; lower IDs are more popular (ID = popularity
// rank-1). Rank-ordered IDs cost no generality for serving experiments and
// make placement policies directly testable.
type ItemID = uint64

// Hash-stream salts: each derived quantity draws from its own hash stream so
// distributions stay independent.
const (
	saltUserTokens  = 0x75746f6b | 1
	saltItemTokens  = 0x69746f6b | 3
	saltAffinity    = 0x61666669 | 5
	saltCandidate   = 0x63616e64 | 7
	saltCandidateB  = 0x63616e62 | 9
	saltGroundTruth = 0x67747275 | 11
)

// Generator derives all lazy workload state for a profile and seed.
type Generator struct {
	prof     Profile
	seed     uint64
	userZipf *Zipf
	itemZipf *Zipf
	lnMu     float64 // log-normal location for user token lengths
}

// NewGenerator validates the profile and builds its samplers.
func NewGenerator(prof Profile, seed int64) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	sigma := prof.UserTokenSigma
	return &Generator{
		prof:     prof,
		seed:     uint64(seed),
		userZipf: NewZipf(prof.Users, prof.UserZipfA),
		itemZipf: NewZipf(prof.Items, prof.ItemZipfA),
		lnMu:     math.Log(float64(prof.AvgUserTokens)) - sigma*sigma/2,
	}, nil
}

// Profile returns the generator's dataset profile.
func (g *Generator) Profile() Profile { return g.prof }

// UserTokens returns user u's profile token count: log-normal with the
// profile's mean and shape, clamped to [32, MaxUserTokens]. Deterministic in
// (seed, u).
func (g *Generator) UserTokens(u UserID) int {
	z := gauss(hash3(g.seed, saltUserTokens, u), hash3(g.seed, saltUserTokens+1, u))
	n := int(math.Exp(g.lnMu + g.prof.UserTokenSigma*z))
	if n < 32 {
		n = 32
	}
	if n > g.prof.MaxUserTokens {
		n = g.prof.MaxUserTokens
	}
	return n
}

// ItemTokens returns item it's description token count: uniform within ±30%
// of the profile average, at least 1. Deterministic in (seed, it).
func (g *Generator) ItemTokens(it ItemID) int {
	u := uniform01(hash3(g.seed, saltItemTokens, it))
	n := int(math.Round(float64(g.prof.AvgItemTokens) * (0.7 + 0.6*u)))
	if n < 1 {
		n = 1
	}
	return n
}

// SampleUser maps a uniform variate to a user by activity skew.
func (g *Generator) SampleUser(u float64) UserID { return UserID(g.userZipf.Rank(u) - 1) }

// SampleItem maps a uniform variate to an item by popularity skew.
func (g *Generator) SampleItem(u float64) ItemID { return ItemID(g.itemZipf.Rank(u) - 1) }

// AffinityItem returns the k-th item of user u's stable interest set.
func (g *Generator) AffinityItem(u UserID, k int) ItemID {
	return g.SampleItem(uniform01(hash3(g.seed^saltAffinity, u, uint64(k))))
}

// Candidates reproduces the retrieval stage for one request: it returns
// prof.Candidates distinct items, a blend of the user's stable interest set
// (AffinityShare) and globally popular items — the paper's "real-time item
// retrieval" whose per-request variability defeats intra-user item caching
// while popular items recur across users (§3.3, §4.1). Deterministic in
// (seed, reqIdx, u).
func (g *Generator) Candidates(reqIdx uint64, u UserID) []ItemID {
	return g.CandidatesAt(reqIdx, u, -1)
}

// CandidatesAt is Candidates with retrieval-time awareness: while the
// profile's burst (if any) is active at time t, the burst block captures its
// configured share of candidate slots.
func (g *Generator) CandidatesAt(reqIdx uint64, u UserID, t float64) []ItemID {
	c := g.prof.Candidates
	burst := g.prof.Burst
	out := make([]ItemID, 0, c)
	seen := make(map[ItemID]struct{}, c)
	for slot := 0; len(out) < c; slot++ {
		h := hash3(g.seed^saltCandidate, reqIdx, uint64(slot))
		var it ItemID
		hb := hash3(g.seed^saltCandidateB, reqIdx, uint64(slot))
		switch {
		case burst.Active(t) && uniform01(hash3(g.seed^saltGroundTruth, reqIdx, uint64(slot))) < burst.Share:
			base := burst.BlockStart(t, g.prof.Items)
			it = base + ItemID(hb%uint64(burst.Items))
			if int64(it) >= int64(g.prof.Items) {
				it -= ItemID(int64(g.prof.Items) - int64(burst.FirstItem))
			}
		case uniform01(h) < g.prof.AffinityShare:
			it = g.AffinityItem(u, int(hb%uint64(g.prof.AffinitySetSize)))
		default:
			it = g.SampleItem(uniform01(hash3(g.seed^saltCandidateB, reqIdx, uint64(slot)+1)))
		}
		if _, dup := seen[it]; dup {
			continue
		}
		seen[it] = struct{}{}
		out = append(out, it)
	}
	return out
}

// Request is one ranking query: a user hitting the system at a point in
// time. Candidates and token counts are re-derived on demand to keep traces
// compact (a 100-candidate list per request would dominate memory).
type Request struct {
	Index int
	Time  float64 // seconds from trace start
	User  UserID
}

// Trace is a time-ordered request log.
type Trace struct {
	Profile  Profile
	Requests []Request
	Duration float64 // seconds
}

// GenerateTrace produces n requests over the given duration. Users arrive in
// sessions: a Zipf-activity-sampled user starts a session at a uniform time
// and issues a geometric number of requests separated by exponential think
// times — yielding the paper's observed temporal locality (Fig. 4) and
// heavy inactive tail (Fig. 2c).
func (g *Generator) GenerateTrace(n int, durationSec float64) (*Trace, error) {
	if n <= 0 || durationSec <= 0 {
		return nil, fmt.Errorf("workload: trace needs positive request count and duration")
	}
	rng := rand.New(rand.NewSource(int64(g.seed) ^ 0x7472616365))
	reqs := make([]Request, 0, n)
	pExtra := 1 / g.prof.AvgSessionRequests
	for len(reqs) < n {
		u := g.SampleUser(rng.Float64())
		t := rng.Float64() * durationSec
		// Geometric session length with mean AvgSessionRequests.
		sess := 1
		if pExtra < 1 {
			sess += int(math.Log(rng.Float64()) / math.Log(1-pExtra))
		}
		for k := 0; k < sess && len(reqs) < n; k++ {
			if t >= durationSec {
				break
			}
			reqs = append(reqs, Request{Time: t, User: u})
			t += rng.ExpFloat64() * g.prof.SessionGapSec
		}
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].Time < reqs[j].Time })
	for i := range reqs {
		reqs[i].Index = i
	}
	return &Trace{Profile: g.prof, Requests: reqs, Duration: durationSec}, nil
}

// RequestTokens summarizes one request's prompt composition.
type RequestTokens struct {
	UserTokens  int
	ItemTokens  int // total across candidates
	InstrTokens int
}

// Total returns the full prompt length.
func (r RequestTokens) Total() int { return r.UserTokens + r.ItemTokens + r.InstrTokens }

// TokensFor computes a request's prompt composition, re-deriving candidate
// lengths.
func (g *Generator) TokensFor(req Request) (RequestTokens, []ItemID) {
	items := g.CandidatesAt(uint64(req.Index), req.User, req.Time)
	rt := RequestTokens{
		UserTokens:  g.UserTokens(req.User),
		InstrTokens: g.prof.InstrTokens,
	}
	for _, it := range items {
		rt.ItemTokens += g.ItemTokens(it)
	}
	return rt, items
}
