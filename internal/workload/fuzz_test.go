package workload

import (
	"strings"
	"testing"
)

// FuzzReadTraceCSV: the parser must never panic and must only accept inputs
// that round-trip sanely.
func FuzzReadTraceCSV(f *testing.F) {
	f.Add("# profile=Games duration=60\nindex,time_sec,user_id\n0,1.5,7\n")
	f.Add("# profile=Games duration=banana\n")
	f.Add("")
	f.Add("0,1.5\n")
	f.Add("# profile=Books duration=60\n0,1.5,7\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadTraceCSV(strings.NewReader(input), Games)
		if err != nil {
			return
		}
		if tr.Duration <= 0 {
			t.Fatalf("accepted trace with duration %v", tr.Duration)
		}
		for _, r := range tr.Requests {
			_ = r // requests parsed without panicking is the property
		}
	})
}
