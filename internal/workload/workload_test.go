package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProfilePresetsMatchTable1(t *testing.T) {
	cases := []struct {
		p          Profile
		users      int
		items      int
		userTokens int
		itemTokens int
	}{
		{Games, 15_000, 8_000, 1245, 11},
		{Beauty, 22_000, 12_000, 2043, 18},
		{Books, 510_000, 280_000, 1586, 15},
		{Industry, 10_000_000, 1_000_000, 1500, 10},
	}
	for _, tc := range cases {
		if tc.p.Users != tc.users || tc.p.Items != tc.items ||
			tc.p.AvgUserTokens != tc.userTokens || tc.p.AvgItemTokens != tc.itemTokens {
			t.Errorf("%s: profile does not match Table 1: %+v", tc.p.Name, tc.p)
		}
		if err := tc.p.Validate(); err != nil {
			t.Errorf("%s: %v", tc.p.Name, err)
		}
	}
}

func TestProfileValidateRejectsBadFields(t *testing.T) {
	muts := []func(*Profile){
		func(p *Profile) { p.Users = 0 },
		func(p *Profile) { p.AvgUserTokens = 0 },
		func(p *Profile) { p.MaxUserTokens = 10 },
		func(p *Profile) { p.ItemZipfA = 0 },
		func(p *Profile) { p.Candidates = 0 },
		func(p *Profile) { p.AffinityShare = 1.5 },
		func(p *Profile) { p.AvgSessionRequests = 0.5 },
		func(p *Profile) { p.SessionGapSec = 0 },
	}
	for i, mut := range muts {
		p := Games
		mut(&p)
		if p.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestScaledProfiles(t *testing.T) {
	p := IndustryX(100_000_000)
	if p.Items != 100_000_000 || p.Name != "Industry-100M" {
		t.Fatalf("IndustryX: %+v", p)
	}
	b := BooksX(1_000_000)
	if b.Items != 1_000_000 || b.Name != "Books-1M" {
		t.Fatalf("BooksX: %+v", b)
	}
	if BooksX(280_000).Name != "Books-280K" {
		t.Fatalf("BooksX name: %s", BooksX(280_000).Name)
	}
}

func TestZipfRankRange(t *testing.T) {
	z := NewZipf(1000, 0.95)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		r := z.Rank(rng.Float64())
		if r < 1 || r > 1000 {
			t.Fatalf("rank %d out of range", r)
		}
	}
	if z.Rank(0) != 1 {
		t.Fatalf("Rank(0) = %d, want 1 (hottest)", z.Rank(0))
	}
	if z.Rank(1) != 1000 {
		t.Fatalf("Rank(1) = %d, want N", z.Rank(1))
	}
}

func TestZipfMonotoneProperty(t *testing.T) {
	z := NewZipf(100_000, 0.95)
	f := func(a, b float64) bool {
		ua, ub := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if math.IsNaN(ua) || math.IsNaN(ub) {
			return true
		}
		if ua > ub {
			ua, ub = ub, ua
		}
		return z.Rank(ua) <= z.Rank(ub)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestZipfTop10Percent reproduces the paper's Fig. 2(d) statistic: with the
// default item exponent, ~90% of accesses hit the top 10% of items.
func TestZipfTop10Percent(t *testing.T) {
	z := NewZipf(1_000_000, Industry.ItemZipfA)
	mass := z.MassOfTopFraction(0.10)
	if mass < 0.85 || mass > 0.95 {
		t.Fatalf("top-10%% mass = %v, want ~0.90", mass)
	}
	// Cross-check analytically predicted mass against empirical sampling.
	rng := rand.New(rand.NewSource(2))
	const samples = 200_000
	hot := 0
	for i := 0; i < samples; i++ {
		if z.Rank(rng.Float64()) <= 100_000 {
			hot++
		}
	}
	emp := float64(hot) / samples
	if math.Abs(emp-mass) > 0.02 {
		t.Fatalf("empirical top-10%% share %v vs analytic %v", emp, mass)
	}
}

func TestZipfExponentOneSpecialCase(t *testing.T) {
	z := NewZipf(10_000, 1.0)
	if r := z.Rank(0.5); r < 1 || r > 10_000 {
		t.Fatalf("rank %d", r)
	}
	if m := z.MassOfTopFraction(1.0); m != 1 {
		t.Fatalf("full mass = %v", m)
	}
}

func newTestGen(t *testing.T, p Profile) *Generator {
	t.Helper()
	g, err := NewGenerator(p, 99)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestUserTokensDistribution(t *testing.T) {
	g := newTestGen(t, Industry)
	var sum float64
	below1000 := 0
	const n = 20_000
	for u := UserID(0); u < n; u++ {
		tok := g.UserTokens(u)
		if tok < 32 || tok > Industry.MaxUserTokens {
			t.Fatalf("user %d tokens %d out of range", u, tok)
		}
		sum += float64(tok)
		if tok < 1000 {
			below1000++
		}
	}
	mean := sum / n
	if mean < 1200 || mean > 1800 {
		t.Fatalf("mean user tokens %v, want ~1500", mean)
	}
	// §4.3: ~36% of users have fewer profile tokens than one request's
	// ~1000 candidate tokens.
	frac := float64(below1000) / n
	if frac < 0.25 || frac > 0.50 {
		t.Fatalf("fraction below 1000 tokens = %v, want ~0.36", frac)
	}
}

func TestUserTokensDeterministic(t *testing.T) {
	g1 := newTestGen(t, Books)
	g2 := newTestGen(t, Books)
	for u := UserID(0); u < 100; u++ {
		if g1.UserTokens(u) != g2.UserTokens(u) {
			t.Fatalf("user %d tokens not deterministic", u)
		}
	}
	g3, _ := NewGenerator(Books, 100)
	diff := 0
	for u := UserID(0); u < 100; u++ {
		if g1.UserTokens(u) != g3.UserTokens(u) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds should reshuffle token lengths")
	}
}

func TestItemTokensMean(t *testing.T) {
	g := newTestGen(t, Beauty)
	var sum float64
	const n = 10_000
	for it := ItemID(0); it < n; it++ {
		tok := g.ItemTokens(it)
		if tok < 1 {
			t.Fatalf("item %d tokens %d", it, tok)
		}
		sum += float64(tok)
	}
	mean := sum / n
	if math.Abs(mean-float64(Beauty.AvgItemTokens)) > 1.5 {
		t.Fatalf("mean item tokens %v, want ~%d", mean, Beauty.AvgItemTokens)
	}
}

func TestCandidatesDistinctAndDeterministic(t *testing.T) {
	g := newTestGen(t, Games)
	c1 := g.Candidates(7, 3)
	c2 := g.Candidates(7, 3)
	if len(c1) != Games.Candidates {
		t.Fatalf("got %d candidates", len(c1))
	}
	seen := map[ItemID]struct{}{}
	for i, it := range c1 {
		if it >= ItemID(Games.Items) {
			t.Fatalf("candidate %d out of corpus", it)
		}
		if _, dup := seen[it]; dup {
			t.Fatal("duplicate candidate")
		}
		seen[it] = struct{}{}
		if c2[i] != it {
			t.Fatal("candidates not deterministic")
		}
	}
	c3 := g.Candidates(8, 3)
	same := 0
	for _, it := range c3 {
		if _, ok := seen[it]; ok {
			same++
		}
	}
	if same == len(c3) {
		t.Fatal("different requests should retrieve different candidate sets")
	}
}

// TestCandidateOverlapAcrossUsers: popular items must recur across different
// users' candidate sets — the reuse opportunity Item-as-prefix exploits.
func TestCandidateOverlapAcrossUsers(t *testing.T) {
	g := newTestGen(t, Industry)
	seen := map[ItemID]int{}
	const reqs = 50
	for r := 0; r < reqs; r++ {
		for _, it := range g.Candidates(uint64(r), UserID(r*1000)) {
			seen[it]++
		}
	}
	shared := 0
	for _, cnt := range seen {
		if cnt >= 5 {
			shared++
		}
	}
	if shared < 20 {
		t.Fatalf("only %d items appeared in >=5 of %d distinct-user requests; popularity skew too weak", shared, reqs)
	}
}

func TestAffinityItemsStable(t *testing.T) {
	g := newTestGen(t, Books)
	if g.AffinityItem(5, 0) != g.AffinityItem(5, 0) {
		t.Fatal("affinity set must be stable")
	}
	diff := 0
	for k := 0; k < 20; k++ {
		if g.AffinityItem(5, k) != g.AffinityItem(6, k) {
			diff++
		}
	}
	if diff < 10 {
		t.Fatal("different users should have different interest sets")
	}
}

func TestGenerateTraceShape(t *testing.T) {
	g := newTestGen(t, Books)
	tr, err := g.GenerateTrace(5000, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 5000 {
		t.Fatalf("%d requests", len(tr.Requests))
	}
	for i, r := range tr.Requests {
		if r.Index != i {
			t.Fatalf("request %d has index %d", i, r.Index)
		}
		if r.Time < 0 || r.Time >= 3600 {
			t.Fatalf("request time %v out of range", r.Time)
		}
		if i > 0 && r.Time < tr.Requests[i-1].Time {
			t.Fatal("trace not time-sorted")
		}
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	g1 := newTestGen(t, Games)
	g2 := newTestGen(t, Games)
	t1, _ := g1.GenerateTrace(500, 600)
	t2, _ := g2.GenerateTrace(500, 600)
	for i := range t1.Requests {
		if t1.Requests[i] != t2.Requests[i] {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestGenerateTraceRejectsBadArgs(t *testing.T) {
	g := newTestGen(t, Games)
	if _, err := g.GenerateTrace(0, 10); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := g.GenerateTrace(10, 0); err == nil {
		t.Fatal("expected error for zero duration")
	}
}

// TestTraceInactiveTail reproduces Fig. 2(c): on the Industry workload, a
// large fraction of touched users issue at most two requests per hour.
func TestTraceInactiveTail(t *testing.T) {
	g := newTestGen(t, Industry)
	tr, err := g.GenerateTrace(30_000, 3600)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[UserID]int{}
	for _, r := range tr.Requests {
		counts[r.User]++
	}
	atMostTwo := 0
	for _, c := range counts {
		if c <= 2 {
			atMostTwo++
		}
	}
	frac := float64(atMostTwo) / float64(len(counts))
	if frac < 0.3 {
		t.Fatalf("only %v of users are inactive (<=2 requests/hour); paper reports a majority", frac)
	}
	// Sessions must also produce some repeat users (multi-turn reuse).
	if len(counts) == len(tr.Requests) {
		t.Fatal("no user issued more than one request; sessions are broken")
	}
}

func TestTokensFor(t *testing.T) {
	g := newTestGen(t, Games)
	tr, _ := g.GenerateTrace(10, 60)
	rt, items := g.TokensFor(tr.Requests[0])
	if len(items) != Games.Candidates {
		t.Fatalf("%d items", len(items))
	}
	if rt.UserTokens != g.UserTokens(tr.Requests[0].User) {
		t.Fatal("user token mismatch")
	}
	wantItems := 0
	for _, it := range items {
		wantItems += g.ItemTokens(it)
	}
	if rt.ItemTokens != wantItems {
		t.Fatalf("item tokens %d, want %d", rt.ItemTokens, wantItems)
	}
	if rt.Total() != rt.UserTokens+rt.ItemTokens+rt.InstrTokens {
		t.Fatal("Total mismatch")
	}
	if rt.InstrTokens != Games.InstrTokens {
		t.Fatal("instr token mismatch")
	}
}

func TestAvgItemTokensPerRequest(t *testing.T) {
	if got := Industry.AvgItemTokensPerRequest(); got != 1000 {
		t.Fatalf("Industry avg item tokens per request = %d, want 1000", got)
	}
}

func TestLazyStateScalesToHugeCorpus(t *testing.T) {
	// A 100M-item profile must be usable without materializing anything.
	g := newTestGen(t, IndustryX(100_000_000))
	it := g.SampleItem(0.999999)
	if it >= 100_000_000 {
		t.Fatalf("item %d out of corpus", it)
	}
	if g.ItemTokens(it) < 1 {
		t.Fatal("bad token count")
	}
	c := g.Candidates(0, 12345)
	if len(c) != 100 {
		t.Fatalf("%d candidates", len(c))
	}
}

func TestBurstChurnRotatesHotBlock(t *testing.T) {
	prof := Games
	prof.Burst = &Burst{
		StartSec: 0, EndSec: 300,
		FirstItem: 1000, Items: 100, Share: 0.9, ChurnSec: 60,
	}
	if err := prof.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(prof, 7)
	if err != nil {
		t.Fatal(err)
	}
	// hitsIn counts candidates landing in [lo, hi) at time t0.
	hitsIn := func(t0 float64, lo, hi ItemID) int {
		n := 0
		for req := uint64(0); req < 200; req++ {
			for _, it := range g.CandidatesAt(req, UserID(req%50), t0) {
				if it >= lo && it < hi {
					n++
				}
			}
		}
		return n
	}
	// Epoch 0 (t=10) heats [1000,1100); epoch 1 (t=70) heats [1100,1200).
	e0InBlock0, e0InBlock1 := hitsIn(10, 1000, 1100), hitsIn(10, 1100, 1200)
	e1InBlock0, e1InBlock1 := hitsIn(70, 1000, 1100), hitsIn(70, 1100, 1200)
	if e0InBlock0 < 10*e0InBlock1+1 {
		t.Fatalf("epoch 0 not concentrated in its block: %d vs %d", e0InBlock0, e0InBlock1)
	}
	if e1InBlock1 < 10*e1InBlock0+1 {
		t.Fatalf("epoch 1 did not rotate to the next block: %d vs %d", e1InBlock1, e1InBlock0)
	}
	// Same epoch is deterministic.
	if again := hitsIn(10, 1000, 1100); again != e0InBlock0 {
		t.Fatalf("same-epoch candidates not deterministic: %d vs %d", again, e0InBlock0)
	}
	// ChurnSec = 0 keeps the legacy fixed block.
	prof.Burst.ChurnSec = 0
	if got := prof.Burst.BlockStart(250, prof.Items); got != 1000 {
		t.Fatalf("static burst block moved: %d", got)
	}
	// Rotation wraps within [FirstItem, corpus).
	prof.Burst.ChurnSec = 1
	for ts := 0.0; ts < 299; ts += 7 {
		start := prof.Burst.BlockStart(ts, prof.Items)
		if start < 1000 || int64(start) >= int64(prof.Items) {
			t.Fatalf("block start %d escaped [1000, %d)", start, prof.Items)
		}
	}
	// Negative churn is rejected.
	prof.Burst.ChurnSec = -1
	if err := prof.Validate(); err == nil {
		t.Fatal("negative churn accepted")
	}
}
