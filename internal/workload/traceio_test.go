package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceCSVRoundTrip(t *testing.T) {
	g := newTestGen(t, Games)
	orig, err := g.GenerateTrace(500, 900)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceCSV(&buf, Games)
	if err != nil {
		t.Fatal(err)
	}
	if got.Duration != orig.Duration {
		t.Fatalf("duration %v != %v", got.Duration, orig.Duration)
	}
	if len(got.Requests) != len(orig.Requests) {
		t.Fatalf("%d requests, want %d", len(got.Requests), len(orig.Requests))
	}
	for i := range orig.Requests {
		if got.Requests[i] != orig.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, got.Requests[i], orig.Requests[i])
		}
	}
}

func TestReadTraceCSVRejectsWrongProfile(t *testing.T) {
	g := newTestGen(t, Games)
	tr, _ := g.GenerateTrace(10, 60)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTraceCSV(&buf, Books); err == nil {
		t.Fatal("profile mismatch accepted")
	}
}

func TestReadTraceCSVMalformed(t *testing.T) {
	cases := []string{
		"# profile=Games duration=60\n1,2\n",         // wrong field count
		"# profile=Games duration=60\nx,1.0,2\n",     // bad index
		"# profile=Games duration=60\n1,zzz,2\n",     // bad time
		"# profile=Games duration=60\n1,1.0,-3\n",    // bad user
		"index,time_sec,user_id\n1,1.0,2\n",          // missing header
		"# profile=Games duration=banana\n1,1.0,2\n", // bad duration
	}
	for i, csv := range cases {
		if _, err := ReadTraceCSV(strings.NewReader(csv), Games); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadTraceCSVSkipsBlankLines(t *testing.T) {
	csv := "# profile=Games duration=60\nindex,time_sec,user_id\n\n0,1.5,7\n"
	tr, err := ReadTraceCSV(strings.NewReader(csv), Games)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 1 || tr.Requests[0].User != 7 {
		t.Fatalf("parsed %+v", tr.Requests)
	}
}
