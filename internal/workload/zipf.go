package workload

import "math"

// Zipf samples ranks 1..N with P(rank r) ∝ r^(-a) using the continuous
// inverse-CDF approximation, which is O(1) per sample and needs no
// materialized tables — essential for 100M-item corpora. Unlike
// math/rand.Zipf it supports exponents a ≤ 1, the regime recommendation
// popularity actually lives in.
type Zipf struct {
	n    float64
	a    float64
	span float64 // N^(1-a) - 1 (a != 1) or ln N (a == 1)
}

// NewZipf returns a sampler over ranks 1..n with exponent a > 0.
func NewZipf(n int, a float64) *Zipf {
	if n <= 0 || a <= 0 {
		panic("workload: Zipf requires n > 0 and a > 0")
	}
	z := &Zipf{n: float64(n), a: a}
	if a == 1 {
		z.span = math.Log(z.n)
	} else {
		z.span = math.Pow(z.n, 1-a) - 1
	}
	return z
}

// Rank maps a uniform variate u ∈ [0,1) to a rank in [1, N]; rank 1 is the
// most popular.
func (z *Zipf) Rank(u float64) int {
	if u < 0 {
		u = 0
	}
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	var r float64
	if z.a == 1 {
		r = math.Exp(u * z.span)
	} else {
		r = math.Pow(1+u*z.span, 1/(1-z.a))
	}
	rank := int(r)
	if rank < 1 {
		rank = 1
	}
	if rank > int(z.n) {
		rank = int(z.n)
	}
	return rank
}

// MassOfTopFraction returns the approximate probability mass held by the
// most popular q·N ranks — e.g. the paper's "top 10% of items receive ~90%
// of accesses" statistic.
func (z *Zipf) MassOfTopFraction(q float64) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return 1
	}
	r := q * z.n
	if z.a == 1 {
		return math.Log(r) / z.span
	}
	return (math.Pow(r, 1-z.a) - 1) / z.span
}

// splitmix64 is the hash underlying all lazy entity-state derivation; it
// mixes a seed and key into a well-distributed 64-bit value.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash2 combines a seed and one key.
func hash2(seed, a uint64) uint64 { return splitmix64(seed ^ splitmix64(a)) }

// hash3 combines a seed and two keys.
func hash3(seed, a, b uint64) uint64 {
	return splitmix64(hash2(seed, a) ^ splitmix64(b+0x517cc1b727220a95))
}

// uniform01 converts a hash to a float in [0, 1).
func uniform01(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// gauss derives a standard normal variate from two hashed uniforms via
// Box–Muller.
func gauss(h1, h2 uint64) float64 {
	u1 := uniform01(h1)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*uniform01(h2))
}
