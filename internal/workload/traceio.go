package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace serialization: a minimal CSV of (index, time, user) — candidates and
// token counts re-derive from the generator, so a persisted trace replays
// bit-identically on any machine given the same profile and seed.

// WriteCSV serializes the trace.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# profile=%s duration=%g\n", t.Profile.Name, t.Duration); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, "index,time_sec,user_id"); err != nil {
		return err
	}
	for _, r := range t.Requests {
		if _, err := fmt.Fprintf(bw, "%d,%s,%d\n", r.Index, strconv.FormatFloat(r.Time, 'g', -1, 64), r.User); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTraceCSV parses a trace written by WriteCSV. The caller supplies the
// profile (the CSV records only its name, for cross-checking).
func ReadTraceCSV(r io.Reader, prof Profile) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	trace := &Trace{Profile: prof}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "index,time_sec,user_id":
			continue
		case strings.HasPrefix(line, "#"):
			if err := parseTraceHeader(line, prof, trace); err != nil {
				return nil, err
			}
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("workload: trace line %d: %d fields", lineNo, len(parts))
		}
		idx, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad index: %w", lineNo, err)
		}
		ts, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad time: %w", lineNo, err)
		}
		user, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad user: %w", lineNo, err)
		}
		trace.Requests = append(trace.Requests, Request{Index: idx, Time: ts, User: user})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if trace.Duration == 0 {
		return nil, fmt.Errorf("workload: trace missing header line")
	}
	return trace, nil
}

func parseTraceHeader(line string, prof Profile, trace *Trace) error {
	for _, field := range strings.Fields(strings.TrimPrefix(line, "#")) {
		kv := strings.SplitN(field, "=", 2)
		if len(kv) != 2 {
			continue
		}
		switch kv[0] {
		case "profile":
			if kv[1] != prof.Name {
				return fmt.Errorf("workload: trace was generated for profile %q, reading with %q", kv[1], prof.Name)
			}
		case "duration":
			d, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				return fmt.Errorf("workload: bad duration header: %w", err)
			}
			trace.Duration = d
		}
	}
	return nil
}
