// Package partition implements the online capacity partition controller from
// the ROADMAP's "one pool, two caches" item: one byte budget split between
// the user-prefix cache class and the HRCS item cache class, re-divided at
// runtime by marginal hit-rate utility instead of a static fraction.
//
// The controller observes each class through cumulative hit/miss counters
// (token-weighted where the caller can supply them) and a capacity
// get/set pair. Every tick it estimates marginal utility per class over a
// sliding window and moves a bounded step of capacity toward the
// higher-utility class, with hysteresis and a per-class floor so neither
// class starves or thrashes. Shrinks are applied to the losing class FIRST
// and only the bytes actually released (the pool may clamp at its pinned
// footprint) are granted to the winner, so the combined budget never
// overcommits.
package partition

import (
	"fmt"
	"math"
	"sync"
	"time"

	"bat/internal/metrics"
)

// Mode selects between the adaptive controller and the legacy static split.
type Mode int

const (
	// Static keeps the boot-time split (e.g. core.Options.ItemBudgetFraction).
	Static Mode = iota
	// Adaptive runs the marginal-utility controller.
	Adaptive
)

// ParseMode parses the -partition flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "static":
		return Static, nil
	case "adaptive":
		return Adaptive, nil
	default:
		return Static, fmt.Errorf("partition: unknown mode %q (want adaptive|static)", s)
	}
}

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Adaptive {
		return "adaptive"
	}
	return "static"
}

// ClassStats is a cumulative counter snapshot for one cache class. Hits and
// Misses should be monotonically non-decreasing; token-weighted counts make
// the utility estimate proportional to recompute work saved, but raw lookup
// counts work too.
type ClassStats struct {
	Hits   int64
	Misses int64
	// GhostHits, when the class can supply it (kvcache.Pool's ghost list),
	// counts misses on recently evicted entries — direct would-have-hit
	// evidence. When any class reports ghost hits in the window the
	// controller uses this signal instead of raw misses, which makes the
	// estimate robust to scan-like traffic (endless misses that extra
	// capacity could never convert).
	GhostHits int64
}

// Class adapts one cache class (user-prefix or item/HRCS) to the controller.
// All three funcs must be safe for concurrent use with the cache's own
// operations; they are called from the controller's tick.
type Class struct {
	// Name labels metrics and Status output (e.g. "user", "item").
	Name string
	// Stats returns the cumulative hit/miss counters for the class.
	Stats func() ClassStats
	// Capacity returns the class's current byte budget.
	Capacity func() int64
	// SetCapacity requests a new byte budget and returns the budget actually
	// applied — a shrink may clamp above the request (e.g. kvcache.Pool
	// clamps at its pinned footprint).
	SetCapacity func(int64) int64
}

// Config tunes the controller. Zero values take the documented defaults.
type Config struct {
	// StepFraction bounds how much of the combined budget one tick may move
	// (default 0.05 = 5%).
	StepFraction float64
	// FloorFraction is the minimum share of the combined budget each class
	// keeps (default 0.10 = 10%), the starvation guard.
	FloorFraction float64
	// Hysteresis is the relative utility advantage the winning class must
	// show before any capacity moves (default 0.10 = 10%), the thrash guard.
	Hysteresis float64
	// WindowTicks is the sliding-window length for the utility estimate
	// (default 4 ticks).
	WindowTicks int
	// Interval is the tick period for Run (default 2s). Tick can also be
	// driven manually (the DES and benches do).
	Interval time.Duration
	// MinSampleTokens is the minimum combined hit+miss delta across both
	// classes in the window before the controller acts (default 1); below
	// it the signal is noise.
	MinSampleTokens int64
}

func (c Config) withDefaults() Config {
	if c.StepFraction <= 0 {
		c.StepFraction = 0.05
	}
	if c.FloorFraction <= 0 {
		c.FloorFraction = 0.10
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.10
	}
	if c.WindowTicks <= 0 {
		c.WindowTicks = 4
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.MinSampleTokens <= 0 {
		c.MinSampleTokens = 1
	}
	return c
}

// classState is the controller's per-class bookkeeping.
type classState struct {
	cls     Class
	window  []ClassStats // ring of cumulative snapshots, len WindowTicks+1
	filled  int
	utility float64
}

// delta returns the hit/miss growth across the sliding window.
func (s *classState) delta() ClassStats {
	if s.filled < 2 {
		return ClassStats{}
	}
	newest := s.window[0]
	oldest := s.window[s.filled-1]
	return ClassStats{
		Hits:      newest.Hits - oldest.Hits,
		Misses:    newest.Misses - oldest.Misses,
		GhostHits: newest.GhostHits - oldest.GhostHits,
	}
}

func (s *classState) observe(st ClassStats, window int) {
	if len(s.window) < window+1 {
		s.window = append([]ClassStats{st}, s.window...)
		s.filled = len(s.window)
		return
	}
	copy(s.window[1:], s.window)
	s.window[0] = st
	if s.filled < len(s.window) {
		s.filled++
	}
}

// Controller shifts capacity between two cache classes by marginal utility.
type Controller struct {
	cfg Config

	mu      sync.Mutex
	classes [2]*classState

	// move accounting (under mu; metrics counters are their own sync).
	ticks      int64
	moves      int64
	movedBytes int64

	movedCounter *metrics.Counter
	tickCounter  *metrics.Counter
	utilGauges   [2]*metrics.Gauge

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
}

// New builds a controller over exactly two classes. Capacity starts wherever
// the classes currently are; the controller only ever re-divides their
// combined budget, it never grows or shrinks the total.
func New(cfg Config, a, b Class) (*Controller, error) {
	for _, c := range []Class{a, b} {
		if c.Name == "" || c.Stats == nil || c.Capacity == nil || c.SetCapacity == nil {
			return nil, fmt.Errorf("partition: class %q missing hooks", c.Name)
		}
	}
	if a.Name == b.Name {
		return nil, fmt.Errorf("partition: classes must have distinct names, both %q", a.Name)
	}
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:     cfg,
		classes: [2]*classState{{cls: a}, {cls: b}},
		stopCh:  make(chan struct{}),
	}, nil
}

// Tick runs one controller step: snapshot counters, update the sliding
// window, estimate per-class marginal utility, and move at most one bounded
// capacity step toward the higher-utility class. It returns the number of
// bytes moved (0 when hysteresis, floors, or thin samples hold it still).
func (c *Controller) Tick() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()

	c.ticks++
	if c.tickCounter != nil {
		c.tickCounter.Inc()
	}

	total := int64(0)
	caps := [2]int64{}
	for i, s := range c.classes {
		s.observe(s.cls.Stats(), c.cfg.WindowTicks)
		caps[i] = s.cls.Capacity()
		total += caps[i]
	}
	if total <= 0 {
		return 0
	}

	var sample, ghostSample int64
	deltas := [2]ClassStats{}
	for i, s := range c.classes {
		deltas[i] = s.delta()
		sample += deltas[i].Hits + deltas[i].Misses
		ghostSample += deltas[i].GhostHits
	}
	for i, s := range c.classes {
		s.utility = marginalUtility(deltas[i], caps[i], ghostSample > 0)
		if c.utilGauges[i] != nil {
			c.utilGauges[i].Set(s.utility)
		}
	}
	// Need a full window and a non-trivial sample before trusting the signal.
	if c.classes[0].filled < 2 || c.classes[1].filled < 2 || sample < c.cfg.MinSampleTokens {
		return 0
	}

	win, lose := 0, 1
	if c.classes[lose].utility > c.classes[win].utility {
		win, lose = lose, win
	}
	// Hysteresis: the winner must beat the loser by a relative margin.
	if c.classes[win].utility <= c.classes[lose].utility*(1+c.cfg.Hysteresis) {
		return 0
	}

	step := int64(c.cfg.StepFraction * float64(total))
	floor := int64(c.cfg.FloorFraction * float64(total))
	if maxStep := caps[lose] - floor; step > maxStep {
		step = maxStep
	}
	if step <= 0 {
		return 0
	}

	// Shrink the loser first; grant the winner only what was actually
	// released so a pinned-clamped shrink can never overcommit the total.
	applied := c.classes[lose].cls.SetCapacity(caps[lose] - step)
	released := caps[lose] - applied
	if released <= 0 {
		return 0
	}
	c.classes[win].cls.SetCapacity(caps[win] + released)

	c.moves++
	c.movedBytes += released
	if c.movedCounter != nil {
		c.movedCounter.Add(released)
	}
	return released
}

// marginalUtility estimates Δhits per Δbyte: how many additional hits the
// class would gain per byte granted. With ghost evidence available (useGhost),
// the signal is windowed ghost hits — misses on recently evicted entries,
// i.e. hits a slightly larger class WOULD have served. Otherwise windowed raw
// misses stand in as the demand proxy. Either is normalized by the class's
// current bytes, so a small class with heavy unmet demand outranks a large
// class coasting on its existing residents.
func marginalUtility(d ClassStats, capacity int64, useGhost bool) float64 {
	demand := d.Misses
	if useGhost {
		demand = d.GhostHits
	}
	if capacity <= 0 {
		// An empty class with any demand has effectively infinite marginal
		// utility; cap it so comparisons stay finite.
		if demand > 0 {
			return math.MaxFloat64 / 2
		}
		return 0
	}
	return float64(demand) / float64(capacity)
}

// Run ticks the controller every cfg.Interval until Stop. Call at most once.
func (c *Controller) Run() {
	c.doneCh = make(chan struct{})
	go func() {
		defer close(c.doneCh)
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-c.stopCh:
				return
			case <-t.C:
				c.Tick()
			}
		}
	}()
}

// Stop halts a running controller and waits for its goroutine to exit.
// Safe to call multiple times and without a prior Run.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	if c.doneCh != nil {
		<-c.doneCh
	}
}

// RegisterMetrics exports the controller's state on reg:
//
//	bat_partition_capacity_bytes{class="..."}  current per-class budget
//	bat_partition_utility{class="..."}         per-class marginal utility
//	bat_partition_moved_bytes_total            cumulative bytes re-assigned
//	bat_partition_ticks_total                  controller ticks
func (c *Controller) RegisterMetrics(reg *metrics.Registry) {
	for i, s := range c.classes {
		cls := s.cls
		reg.GaugeFunc(fmt.Sprintf("bat_partition_capacity_bytes{class=%q}", cls.Name), func() float64 {
			return float64(cls.Capacity())
		})
		c.utilGauges[i] = reg.Gauge(fmt.Sprintf("bat_partition_utility{class=%q}", cls.Name))
	}
	c.movedCounter = reg.Counter("bat_partition_moved_bytes_total")
	c.tickCounter = reg.Counter("bat_partition_ticks_total")
}

// ClassStatus is one class's view in Status.
type ClassStatus struct {
	Name          string  `json:"name"`
	CapacityBytes int64   `json:"capacity_bytes"`
	Utility       float64 `json:"utility"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
}

// Status is a point-in-time controller snapshot for debug endpoints/benches.
type Status struct {
	Ticks      int64         `json:"ticks"`
	Moves      int64         `json:"moves"`
	MovedBytes int64         `json:"moved_bytes"`
	Classes    []ClassStatus `json:"classes"`
}

// Status reports the controller's current split and move totals.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{Ticks: c.ticks, Moves: c.moves, MovedBytes: c.movedBytes}
	for _, s := range c.classes {
		cur := s.cls.Stats()
		st.Classes = append(st.Classes, ClassStatus{
			Name:          s.cls.Name,
			CapacityBytes: s.cls.Capacity(),
			Utility:       s.utility,
			Hits:          cur.Hits,
			Misses:        cur.Misses,
		})
	}
	return st
}
