package partition

import (
	"strings"
	"testing"
	"time"

	"bat/internal/kvcache"
	"bat/internal/metrics"
)

// fakeClass is a scripted cache class: the test pushes counter deltas and
// watches capacity move.
type fakeClass struct {
	name     string
	stats    ClassStats
	capacity int64
	// clampAt, when >0, refuses to shrink below it (pinned-footprint model).
	clampAt int64
}

func (f *fakeClass) class() Class {
	return Class{
		Name:     f.name,
		Stats:    func() ClassStats { return f.stats },
		Capacity: func() int64 { return f.capacity },
		SetCapacity: func(b int64) int64 {
			if f.clampAt > 0 && b < f.clampAt {
				b = f.clampAt
			}
			f.capacity = b
			return b
		},
	}
}

func mustController(t *testing.T, cfg Config, a, b Class) *Controller {
	t.Helper()
	c, err := New(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidates(t *testing.T) {
	a := &fakeClass{name: "user", capacity: 100}
	if _, err := New(Config{}, a.class(), a.class()); err == nil {
		t.Fatal("duplicate names accepted")
	}
	broken := a.class()
	broken.Name = "item"
	broken.Stats = nil
	if _, err := New(Config{}, a.class(), broken); err == nil {
		t.Fatal("missing Stats hook accepted")
	}
}

func TestParseMode(t *testing.T) {
	if m, err := ParseMode("adaptive"); err != nil || m != Adaptive {
		t.Fatalf("adaptive: %v %v", m, err)
	}
	if m, err := ParseMode("static"); err != nil || m != Static {
		t.Fatalf("static: %v %v", m, err)
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

// TestTickMovesTowardDemand drives heavy misses into one class and asserts
// capacity flows toward it in bounded steps while the total stays constant.
func TestTickMovesTowardDemand(t *testing.T) {
	user := &fakeClass{name: "user", capacity: 500}
	item := &fakeClass{name: "item", capacity: 500}
	c := mustController(t, Config{StepFraction: 0.10, WindowTicks: 2, MinSampleTokens: 1}, user.class(), item.class())

	c.Tick() // first tick only seeds the window
	total := user.capacity + item.capacity
	for i := 0; i < 5; i++ {
		user.stats.Misses += 1000
		item.stats.Hits += 1000
		moved := c.Tick()
		if i >= 1 && moved == 0 && item.capacity > int64(0.10*float64(total)) {
			t.Fatalf("tick %d: no move despite one-sided demand (item=%d)", i, item.capacity)
		}
		if moved > int64(0.10*float64(total))+1 {
			t.Fatalf("tick %d: moved %d exceeds step bound", i, moved)
		}
		if got := user.capacity + item.capacity; got != total {
			t.Fatalf("tick %d: total drifted %d -> %d", i, total, got)
		}
	}
	if user.capacity <= 500 {
		t.Fatalf("user capacity did not grow: %d", user.capacity)
	}
	st := c.Status()
	if st.Moves == 0 || st.MovedBytes == 0 {
		t.Fatalf("status move accounting empty: %+v", st)
	}
}

// TestFloorStopsStarvation keeps one-sided pressure on and asserts the loser
// never drops below the floor share.
func TestFloorStopsStarvation(t *testing.T) {
	user := &fakeClass{name: "user", capacity: 500}
	item := &fakeClass{name: "item", capacity: 500}
	c := mustController(t, Config{StepFraction: 0.25, FloorFraction: 0.20, WindowTicks: 2}, user.class(), item.class())
	for i := 0; i < 50; i++ {
		user.stats.Misses += 1000
		c.Tick()
	}
	if item.capacity < 200 {
		t.Fatalf("loser starved below floor: %d", item.capacity)
	}
	if user.capacity != 800 {
		t.Fatalf("winner should hold everything above the floor: %d", user.capacity)
	}
}

// TestHysteresisHoldsBalancedLoad feeds both classes near-identical demand
// and asserts no capacity sloshes back and forth.
func TestHysteresisHoldsBalancedLoad(t *testing.T) {
	user := &fakeClass{name: "user", capacity: 500}
	item := &fakeClass{name: "item", capacity: 500}
	c := mustController(t, Config{Hysteresis: 0.10, WindowTicks: 2}, user.class(), item.class())
	for i := 0; i < 20; i++ {
		user.stats.Misses += 1000
		item.stats.Misses += 1005 // within the 10% band
		if moved := c.Tick(); moved != 0 {
			t.Fatalf("tick %d: moved %d under balanced load", i, moved)
		}
	}
	if user.capacity != 500 || item.capacity != 500 {
		t.Fatalf("split drifted: %d/%d", user.capacity, item.capacity)
	}
}

// TestGhostSignalBeatsScanMisses: when ghost evidence is present, a class
// generating scan-like traffic (endless misses, no ghost hits — extra bytes
// would convert none of them) must NOT attract capacity away from a class
// whose misses land on recently evicted entries.
func TestGhostSignalBeatsScanMisses(t *testing.T) {
	scan := &fakeClass{name: "item", capacity: 500}
	reuse := &fakeClass{name: "user", capacity: 500}
	c := mustController(t, Config{StepFraction: 0.10, WindowTicks: 2}, scan.class(), reuse.class())
	c.Tick()
	for i := 0; i < 10; i++ {
		scan.stats.Misses += 5000 // huge raw miss rate, zero ghost hits
		reuse.stats.Misses += 500
		reuse.stats.GhostHits += 400 // most misses were barely evicted
		c.Tick()
	}
	if reuse.capacity <= 500 {
		t.Fatalf("ghost-backed class lost capacity to a scan: scan=%d reuse=%d",
			scan.capacity, reuse.capacity)
	}
	// Without ghost evidence the same miss ratio would have gone the other
	// way — sanity-check the fallback still works on a fresh controller.
	scan2 := &fakeClass{name: "item", capacity: 500}
	reuse2 := &fakeClass{name: "user", capacity: 500}
	c2 := mustController(t, Config{StepFraction: 0.10, WindowTicks: 2}, scan2.class(), reuse2.class())
	c2.Tick()
	for i := 0; i < 10; i++ {
		scan2.stats.Misses += 5000
		reuse2.stats.Misses += 500
		c2.Tick()
	}
	if scan2.capacity <= 500 {
		t.Fatalf("miss fallback broken: scan=%d", scan2.capacity)
	}
}

// TestClampedShrinkNeverOvercommits models a loser that can only release part
// of the requested step (pinned footprint): the winner must receive only the
// released bytes.
func TestClampedShrinkNeverOvercommits(t *testing.T) {
	user := &fakeClass{name: "user", capacity: 500}
	item := &fakeClass{name: "item", capacity: 500, clampAt: 480}
	c := mustController(t, Config{StepFraction: 0.10, WindowTicks: 2}, user.class(), item.class())
	c.Tick()
	user.stats.Misses += 1000
	moved := c.Tick()
	if moved != 20 {
		t.Fatalf("moved %d, want the 20 bytes the clamp released", moved)
	}
	if user.capacity+item.capacity != 1000 {
		t.Fatalf("total overcommitted: %d + %d", user.capacity, item.capacity)
	}
	// Fully clamped: nothing released, nothing granted.
	item.clampAt = item.capacity
	user.stats.Misses += 1000
	if moved := c.Tick(); moved != 0 {
		t.Fatalf("fully clamped shrink still moved %d", moved)
	}
}

// TestControllerDrivesRealPools wires the controller to two live
// kvcache.Pools and shifts a synthetic workload from item-heavy to
// user-heavy, asserting capacity follows the phase flip in both directions.
func TestControllerDrivesRealPools(t *testing.T) {
	newPool := func(capacity int64) *kvcache.Pool {
		p, err := kvcache.NewPool(capacity, 1024, 10, kvcache.EvictLRU)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	userPool := newPool(32 * 1024)
	itemPool := newPool(32 * 1024)
	poolClass := func(name string, p *kvcache.Pool) Class {
		return Class{
			Name:        name,
			Stats:       func() ClassStats { return ClassStats{Hits: p.Hits, Misses: p.Misses} },
			Capacity:    p.CapacityBytes,
			SetCapacity: p.SetCapacityBytes,
		}
	}
	c, err := New(Config{StepFraction: 0.10, WindowTicks: 2}, poolClass("user", userPool), poolClass("item", itemPool))
	if err != nil {
		t.Fatal(err)
	}

	run := func(p *kvcache.Pool, keys int, kind func(uint64) kvcache.EntryKey) {
		for k := 0; k < keys; k++ {
			if _, ok := p.Lookup(kind(uint64(k))); !ok {
				p.Put(kind(uint64(k)), 100, 1)
			}
		}
	}
	// Phase 1: item working set (64 keys) overflows its half; users idle.
	for tick := 0; tick < 12; tick++ {
		run(itemPool, 64, func(id uint64) kvcache.EntryKey { return kvcache.EntryKey{Kind: kvcache.ItemEntry, ID: id} })
		run(userPool, 4, func(id uint64) kvcache.EntryKey { return kvcache.EntryKey{Kind: kvcache.UserEntry, ID: id} })
		c.Tick()
	}
	if itemPool.CapacityBytes() <= userPool.CapacityBytes() {
		t.Fatalf("phase 1: capacity did not follow item demand: item=%d user=%d",
			itemPool.CapacityBytes(), userPool.CapacityBytes())
	}
	// Phase 2: flip — users overflow, items quiesce to a tiny set.
	for tick := 0; tick < 30; tick++ {
		run(userPool, 64, func(id uint64) kvcache.EntryKey { return kvcache.EntryKey{Kind: kvcache.UserEntry, ID: id} })
		run(itemPool, 4, func(id uint64) kvcache.EntryKey { return kvcache.EntryKey{Kind: kvcache.ItemEntry, ID: id} })
		c.Tick()
	}
	if userPool.CapacityBytes() <= itemPool.CapacityBytes() {
		t.Fatalf("phase 2: capacity did not follow the flip: item=%d user=%d",
			itemPool.CapacityBytes(), userPool.CapacityBytes())
	}
	if userPool.UsedBytes() > userPool.CapacityBytes() || itemPool.UsedBytes() > itemPool.CapacityBytes() {
		t.Fatal("pool invariant broken under controller resizes")
	}
}

func TestRegisterMetricsAndRun(t *testing.T) {
	user := &fakeClass{name: "user", capacity: 500}
	item := &fakeClass{name: "item", capacity: 500}
	c := mustController(t, Config{WindowTicks: 2, Interval: time.Millisecond}, user.class(), item.class())
	reg := metrics.NewRegistry()
	c.RegisterMetrics(reg)
	c.Run()
	user.stats.Misses = 5000
	deadline := time.Now().Add(2 * time.Second)
	for c.Status().Ticks < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
	if c.Status().Ticks < 3 {
		t.Fatalf("background ticks = %d", c.Status().Ticks)
	}
	var sb strings.Builder
	reg.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"bat_partition_capacity_bytes", "bat_partition_utility",
		"bat_partition_moved_bytes_total", "bat_partition_ticks_total",
		`class="user"`, `class="item"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}
