package bat

// The benchmark harness: one benchmark per table and figure in the paper's
// evaluation. Each iteration regenerates the artifact end to end (workload
// synthesis, placement, scheduling, simulation or model execution), so
// benchmark time measures the full reproduction pipeline and -v output can
// be diffed against EXPERIMENTS.md.
//
//	go test -bench=. -benchmem                 # every artifact
//	go test -bench=BenchmarkFig5QPS -v         # one artifact, with its table

import (
	"testing"

	"bat/internal/experiments"
)

// benchOpts trades a little statistical resolution for tractable benchmark
// time; cmd/batbench without -quick runs the full-size configurations.
func benchOpts() experiments.Options {
	return experiments.Options{Requests: 2000, Seed: 11}
}

func runArtifact(b *testing.B, id string, opts experiments.Options) {
	b.Helper()
	runner, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("artifact %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		table, err := runner(opts)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + table.Format())
		}
	}
}

func BenchmarkFig2aLatency(b *testing.B)    { runArtifact(b, "fig2a", benchOpts()) }
func BenchmarkFig2bUserTokens(b *testing.B) { runArtifact(b, "fig2b", benchOpts()) }
func BenchmarkFig2cUserFreq(b *testing.B)   { runArtifact(b, "fig2c", benchOpts()) }
func BenchmarkFig2dItemFreq(b *testing.B)   { runArtifact(b, "fig2d", benchOpts()) }
func BenchmarkTable1Datasets(b *testing.B)  { runArtifact(b, "table1", benchOpts()) }
func BenchmarkTable2Models(b *testing.B)    { runArtifact(b, "table2", benchOpts()) }
func BenchmarkFig4Consistency(b *testing.B) { runArtifact(b, "fig4", benchOpts()) }

func BenchmarkFig5QPS(b *testing.B) { runArtifact(b, "fig5", benchOpts()) }

func BenchmarkFig6HitRate(b *testing.B) { runArtifact(b, "fig6", benchOpts()) }

func BenchmarkTable3Accuracy(b *testing.B) {
	opts := benchOpts()
	opts.Quick = true // full Table 3 runs ~18 model evaluations; see batbench
	opts.Requests = 0
	runArtifact(b, "table3", opts)
}

func BenchmarkFig7Placement(b *testing.B)     { runArtifact(b, "fig7", benchOpts()) }
func BenchmarkFig8Scheduling(b *testing.B)    { runArtifact(b, "fig8", benchOpts()) }
func BenchmarkTable4Ablation(b *testing.B)    { runArtifact(b, "table4", benchOpts()) }
func BenchmarkFig9Latency(b *testing.B)       { runArtifact(b, "fig9", benchOpts()) }
func BenchmarkFig10DatasetScale(b *testing.B) { runArtifact(b, "fig10", benchOpts()) }
func BenchmarkFig11NodeScale(b *testing.B)    { runArtifact(b, "fig11", benchOpts()) }

// Engine: the batched multi-core compute core, measured against the retained
// token-at-a-time reference (see internal/model's Benchmark{Prefill,Decode}
// for the kernel-level views).
func BenchmarkEngine(b *testing.B) {
	opts := benchOpts()
	opts.Quick = true // the artifact itself times full prefills; keep b.N cheap
	opts.Requests = 0
	runArtifact(b, "engine", opts)
}

// Extensions: passing paper claims and design-knob ablations.
func BenchmarkExtCandidateSweep(b *testing.B)   { runArtifact(b, "ext-candidates", benchOpts()) }
func BenchmarkExtAlphaSweep(b *testing.B)       { runArtifact(b, "ext-alpha", benchOpts()) }
func BenchmarkExtBurstRefresh(b *testing.B)     { runArtifact(b, "ext-burst", benchOpts()) }
func BenchmarkExtSlowTier(b *testing.B)         { runArtifact(b, "ext-tier", benchOpts()) }
func BenchmarkExtGPUResident(b *testing.B)      { runArtifact(b, "ext-gpu", benchOpts()) }
func BenchmarkExtSchedulerLattice(b *testing.B) { runArtifact(b, "ext-oracle", benchOpts()) }
