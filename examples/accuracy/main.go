// Accuracy: a miniature Table 3 — UP vs IP ranking quality across the three
// constructed model variants, including the position-sensitive model's
// degradation and its PIC recovery.
//
//	go run ./examples/accuracy
package main

import (
	"fmt"
	"log"

	"bat/internal/bipartite"
	"bat/internal/ranking"
)

func main() {
	ds, err := ranking.NewDataset(ranking.DatasetConfig{
		Name: "beauty-mini", Items: 400, Users: 100, Clusters: 8, LatentDim: 8,
		HistoryMin: 10, HistoryMax: 32, ItemAttrTokens: 2,
		ClusterNoise: 0.15, Candidates: 50, HardNegatives: 6, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	const nReq = 80

	fmt.Printf("%-16s %-8s %-10s %-8s %-8s\n", "Model", "Strategy", "Recall@10", "MRR@10", "NDCG@10")
	for _, v := range ranking.Variants() {
		r, err := ranking.NewRanker(ds, v)
		if err != nil {
			log.Fatal(err)
		}
		show := func(kind bipartite.PrefixKind, opts ranking.RankOpts) {
			res, err := r.Evaluate(nReq, kind, opts, 6)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-16s %-8s %-10.4f %-8.4f %-8.4f\n",
				res.Model, res.Strategy, res.Recall10, res.MRR10, res.NDCG10)
		}
		show(bipartite.UserPrefix, ranking.RankOpts{})
		show(bipartite.ItemPrefix, ranking.RankOpts{})
		if v.PosSensitive {
			show(bipartite.ItemPrefix, ranking.RankOpts{PIC: true})
		}
	}
	fmt.Println("\nposition-robust variants keep IP ≈ UP; the AbsPos variant degrades under")
	fmt.Println("IP and position-independent caching (PIC) recovers most of the gap — Table 3's shape.")
}
