// Placement: walk through Algorithm 1 (hot-replicated cold-sharded item
// cache placement) on the Books corpus — how network bandwidth and the
// tolerated communication ratio α shape the replicated area, and what each
// strategy costs in memory and network traffic.
//
//	go run ./examples/placement
package main

import (
	"fmt"
	"log"

	"bat/internal/costmodel"
	"bat/internal/model"
	"bat/internal/placement"
	"bat/internal/workload"
)

func main() {
	est, err := costmodel.FitEstimator(costmodel.A100PCIe3, model.Qwen2_1_5B)
	if err != nil {
		log.Fatal(err)
	}
	prof := workload.Books
	zipf := workload.NewZipf(prof.Items, prof.ItemZipfA)

	fmt.Printf("corpus: %d items x %d tokens x %d B/token = %.1f GB of item KV cache\n\n",
		prof.Items, prof.AvgItemTokens, model.Qwen2_1_5B.KVBytesPerToken(),
		float64(prof.Items*prof.AvgItemTokens*model.Qwen2_1_5B.KVBytesPerToken())/(1<<30))

	fmt.Printf("%-10s %-8s %-9s %-12s %-12s %-22s\n",
		"Strategy", "Network", "R_max", "Replicated", "Mem/Node", "Access local/remote/miss")
	for _, gbps := range []float64{10, 100} {
		for _, strat := range []placement.Strategy{placement.HRCS, placement.Replicate, placement.Hash} {
			plan, err := placement.NewPlan(strat, placement.Input{
				Est:     est,
				Link:    costmodel.NewLink(gbps),
				Model:   model.Qwen2_1_5B,
				Profile: prof,
				Alpha:   0.05,
				Workers: 4,
			})
			if err != nil {
				log.Fatal(err)
			}
			local, remote, miss := plan.ExpectedAccessSplit(zipf)
			mem := fmt.Sprintf("%.1fGB", float64(plan.ItemBytesPerWorker())/(1<<30))
			fmt.Printf("%-10s %-8s %-9.3f %-12d %-12s %5.1f%% / %4.1f%% / %4.1f%%\n",
				plan.Strategy, fmt.Sprintf("%gGbps", gbps), plan.MaxCommRatio,
				plan.ReplicatedItems, mem, local*100, remote*100, miss*100)
		}
	}
	fmt.Println("\nslower networks shrink R_max, so HRCS replicates more of the hot head;")
	fmt.Println("full replication wastes memory, hash sharding pays remote transfers.")
}
