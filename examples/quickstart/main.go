// Quickstart: rank one request with Bipartite Attention both ways.
//
// Builds a small synthetic recommendation corpus and an executable GR
// model, then scores the same request under User-as-prefix and
// Item-as-prefix, showing that the two orderings agree while Item-as-prefix
// makes every candidate's KV cache reusable across users.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bat/internal/bipartite"
	"bat/internal/ranking"
)

func main() {
	ds, err := ranking.NewDataset(ranking.DatasetConfig{
		Name: "quickstart", Items: 200, Users: 50, Clusters: 6, LatentDim: 8,
		HistoryMin: 8, HistoryMax: 24, ItemAttrTokens: 2,
		ClusterNoise: 0.15, Candidates: 20, HardNegatives: 4, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	ranker, err := ranking.NewRanker(ds, ranking.VariantBase)
	if err != nil {
		log.Fatal(err)
	}

	req := ds.SampleRequest(7, 4)
	fmt.Printf("user %d: %d history interactions, %d candidates (truth: item %d)\n\n",
		req.User, len(ds.UserHistory[req.User]), len(req.Candidates), req.Candidates[req.Truth])

	// Conventional User-as-prefix attention.
	upRank, upRun, err := ranker.Rank(req, bipartite.UserPrefix, ranking.RankOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user-as-prefix:  top-5 %v  (computed %d tokens, cacheable prefix: the %d-token user profile)\n",
		itemIDs(req, upRank[:5]), upRun.ComputedTokens, upRun.Layout.PrefixLen)

	// Item-as-prefix attention — cold, producing per-item caches.
	ipRank, ipRun, err := ranker.Rank(req, bipartite.ItemPrefix, ranking.RankOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("item-as-prefix:  top-5 %v  (computed %d tokens, cacheable prefix: %d item tokens, %d caches minted)\n",
		itemIDs(req, ipRank[:5]), ipRun.ComputedTokens, ipRun.Layout.PrefixLen, len(ipRun.NewItemCaches))

	// Warm Item-as-prefix: a different user, same retrieved candidates.
	req2 := ranking.EvalRequest{User: 13, Candidates: req.Candidates}
	warmRank, warmRun, err := ranker.Rank(req2, bipartite.ItemPrefix, ranking.RankOpts{
		Caches: bipartite.CacheSet{Items: ipRun.NewItemCaches},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("item-as-prefix (user %d, warm): top-5 %v  (reused %d tokens across users, computed only %d)\n",
		req2.User, itemIDs(req2, warmRank[:5]), warmRun.ReusedTokens, warmRun.ComputedTokens)

	fmt.Println("\nthe candidate set is an unordered set: permuting it leaves scores unchanged,")
	fmt.Println("which is what lets BAT pick whichever prefix the cache state favors.")
}

func itemIDs(req ranking.EvalRequest, slots []int) []int {
	out := make([]int, len(slots))
	for i, s := range slots {
		out[i] = req.Candidates[s]
	}
	return out
}
