// Tokenize: the offline pre-encoding stage (§5.1) — synthesize a product
// catalog, build its vocabulary, and encode item descriptions and user
// profiles into the token sequences the serving system caches, calibrated to
// Table 1's average token counts.
//
//	go run ./examples/tokenize
package main

import (
	"fmt"
	"log"

	"bat/internal/textenc"
)

func main() {
	// extraAttrWords calibrates encoded length to each dataset's Table 1
	// "Ave. Item Token Num.".
	datasets := []struct {
		name  string
		extra int
		want  int
	}{
		{"Industry", 1, 10},
		{"Games", 2, 11},
		{"Books", 6, 15},
		{"Beauty", 9, 18},
	}

	fmt.Println("sample catalog entries (Books calibration):")
	c := textenc.NewCatalog(7, 6)
	vocab, err := c.BuildVocab(64)
	if err != nil {
		log.Fatal(err)
	}
	for it := uint64(0); it < 3; it++ {
		text := c.ItemText(it)
		fmt.Printf("  item %d: %q\n           tokens %v\n", it, text, vocab.Encode(text))
	}

	user := c.UserText(42, []uint64{3, 17, 9})
	fmt.Printf("\nuser profile: %q\n          tokens %v\n", user, vocab.Encode(user))

	fmt.Printf("\n%-10s %-18s %-14s\n", "Dataset", "AvgTokens(meas.)", "Table1 target")
	for _, ds := range datasets {
		cat := textenc.NewCatalog(7, ds.extra)
		v, err := cat.BuildVocab(64)
		if err != nil {
			log.Fatal(err)
		}
		total := 0
		const n = 2000
		for it := uint64(0); it < n; it++ {
			total += len(v.Encode(cat.ItemText(it)))
		}
		fmt.Printf("%-10s %-18.1f %-14d\n", ds.name, float64(total)/n, ds.want)
	}
	fmt.Println("\nitem descriptions are static, so their token sequences — and therefore")
	fmt.Println("their KV caches — are precomputable offline, exactly what Item-as-prefix exploits.")
}
