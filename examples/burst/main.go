// Burst: a transient hotspot erupts mid-trace — items from deep in the cold
// tail suddenly capture 40% of retrieval. The static HRCS placement takes
// the miss penalty; the background refresh process (§5.2 step 3) promotes
// the recently-missed items into a replicated slack area and absorbs it.
//
//	go run ./examples/burst
package main

import (
	"fmt"
	"log"

	"bat/internal/cluster"
	"bat/internal/costmodel"
	"bat/internal/kvcache"
	"bat/internal/model"
	"bat/internal/placement"
	"bat/internal/scheduler"
	"bat/internal/workload"
)

func main() {
	prof := workload.Books
	prof.Name = "Books+burst"
	prof.Burst = &workload.Burst{
		StartSec:  1200,
		EndSec:    2400,
		FirstItem: workload.ItemID(prof.Items / 2),
		Items:     50,
		Share:     0.4,
	}
	gen, err := workload.NewGenerator(prof, 11)
	if err != nil {
		log.Fatal(err)
	}
	est, err := costmodel.FitEstimator(costmodel.A100PCIe3, model.Qwen2_1_5B)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := placement.NewPlan(placement.HRCS, placement.Input{
		Est: est, Link: costmodel.NewLink(100), Model: model.Qwen2_1_5B,
		Profile: prof, Alpha: 0.05, Workers: 4,
		PerWorkerItemBudget: (12 << 30) * 7 / 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	trace, err := gen.GenerateTrace(20000, 3600)
	if err != nil {
		log.Fatal(err)
	}

	run := func(refresh bool) *cluster.Stats {
		cfg := cluster.Config{
			Nodes: 4, GPU: costmodel.A100PCIe3, Model: model.Qwen2_1_5B,
			Link: costmodel.NewLink(100), HostMemBytes: 12 << 30,
			Plan: plan, Policy: scheduler.HotnessAware{}, UserEvict: kvcache.EvictMinHotness,
			StatsBucketSec: 600,
		}
		if refresh {
			cfg.Dynamic = placement.NewDynamicPlan(plan, 128)
			cfg.RefreshIntervalSec = 120
		}
		sim, err := cluster.New(cfg, gen)
		if err != nil {
			log.Fatal(err)
		}
		st, err := sim.RunThroughput(trace)
		if err != nil {
			log.Fatal(err)
		}
		return st
	}

	static := run(false)
	refreshed := run(true)

	fmt.Printf("burst: items %d..%d take %.0f%% of retrieval during [%.0fs, %.0fs)\n\n",
		prof.Burst.FirstItem, prof.Burst.FirstItem+workload.ItemID(prof.Burst.Items)-1,
		prof.Burst.Share*100, prof.Burst.StartSec, prof.Burst.EndSec)
	fmt.Printf("%-12s %-12s %-14s\n", "Window", "Static hit", "Refreshed hit")
	for i := range static.Buckets {
		sb := static.Buckets[i]
		rb := refreshed.Buckets[i]
		marker := ""
		if prof.Burst.Active(sb.StartSec) {
			marker = "  <- burst"
		}
		window := fmt.Sprintf("%.0f-%.0fs", sb.StartSec, sb.StartSec+600)
		fmt.Printf("%-12s %-12s %-14s%s\n", window,
			fmt.Sprintf("%.1f%%", sb.HitRate()*100),
			fmt.Sprintf("%.1f%%", rb.HitRate()*100), marker)
	}
	fmt.Printf("\noverall QPS: static %.1f, refreshed %.1f\n", static.QPS, refreshed.QPS)
}
