// Distserve: assemble Figure 3's disaggregated architecture in one process
// — a cache meta service, three KV cache workers, and an inference frontend,
// each behind a real HTTP listener — then serve requests whose KV payloads
// travel over the wire between components.
//
//	go run ./examples/distserve
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"bat/internal/distserve"
	"bat/internal/ranking"
)

func listen(h http.Handler, what string) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, h); err != nil {
			log.Printf("%s: %v", what, err)
		}
	}()
	url := "http://" + ln.Addr().String()
	fmt.Printf("%-22s %s\n", what, url)
	return url
}

func main() {
	ds, err := ranking.NewDataset(ranking.DatasetConfig{
		Name: "dist", Items: 300, Users: 80, Clusters: 6, LatentDim: 8,
		HistoryMin: 8, HistoryMax: 24, ItemAttrTokens: 2,
		ClusterNoise: 0.15, Candidates: 30, HardNegatives: 5, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	meta := distserve.NewMetaServer(300, nil)
	metaURL := listen(meta.Handler(), "cache meta service")

	var workers []*distserve.CacheWorker
	var workerURLs []string
	for i := 0; i < 3; i++ {
		cw, err := distserve.NewCacheWorker(64 << 20)
		if err != nil {
			log.Fatal(err)
		}
		workers = append(workers, cw)
		workerURLs = append(workerURLs, listen(cw.Handler(), fmt.Sprintf("kv cache worker %d", i)))
	}

	frontend, err := distserve.NewFrontend(distserve.FrontendConfig{
		Dataset:      ds,
		Variant:      ranking.VariantBase,
		MetaURL:      metaURL,
		CacheWorkers: workerURLs,
	})
	if err != nil {
		log.Fatal(err)
	}
	frontURL := listen(frontend.Handler(), "inference frontend")

	// Two users retrieve the same candidates: the second request's item
	// caches arrive over HTTP from the cache workers.
	cands := []int{3, 17, 42, 55, 68, 71, 90, 104, 120, 133, 150, 162}
	for _, user := range []int{5, 19} {
		body, err := json.Marshal(distserve.RankRequest{UserID: user, CandidateIDs: cands})
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.Post(frontURL+"/v1/rank", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var out distserve.RankResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("\nuser %d: top-5 %v via %s (reused %d, computed %d tokens)\n",
			user, out.Ranking[:5], out.Prefix, out.ReusedTokens, out.ComputedTokens)
	}

	total := 0
	for i, w := range workers {
		st := w.Stats()
		total += st.Entries
		fmt.Printf("worker %d holds %d KV payloads (%d B), %d hits\n", i, st.Entries, st.UsedBytes, st.Hits)
	}
	fmt.Printf("\n%d item prefixes live in the disaggregated pool; the second user's\n", total)
	fmt.Println("request fetched them over the network instead of recomputing.")
}
