// Distserve: assemble Figure 3's disaggregated architecture in one process
// — a cache meta service, three KV cache workers, and an inference frontend,
// each behind a real HTTP listener — then serve requests whose KV payloads
// travel over the wire between components.
//
// Act two wedges a cache worker through a fault-injection proxy: the
// frontend's transfer engine times the worker out, trips its circuit
// breaker, and degrades to recompute with bounded latency instead of
// hanging the request.
//
//	go run ./examples/distserve
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"bat/internal/distserve"
	"bat/internal/ranking"
)

func listen(h http.Handler, what string) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, h); err != nil {
			log.Printf("%s: %v", what, err)
		}
	}()
	url := "http://" + ln.Addr().String()
	fmt.Printf("%-22s %s\n", what, url)
	return url
}

func rank(frontURL string, user int, cands []int) distserve.RankResponse {
	body, err := json.Marshal(distserve.RankRequest{UserID: user, CandidateIDs: cands})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(frontURL+"/v1/rank", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out distserve.RankResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return out
}

func main() {
	ds, err := ranking.NewDataset(ranking.DatasetConfig{
		Name: "dist", Items: 300, Users: 80, Clusters: 6, LatentDim: 8,
		HistoryMin: 8, HistoryMax: 24, ItemAttrTokens: 2,
		ClusterNoise: 0.15, Candidates: 30, HardNegatives: 5, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	meta := distserve.NewMetaServer(300, nil)
	metaURL := listen(meta.Handler(), "cache meta service")

	var workers []*distserve.CacheWorker
	var proxies []*distserve.FaultProxy
	var workerURLs []string
	for i := 0; i < 3; i++ {
		cw, err := distserve.NewCacheWorker(64 << 20)
		if err != nil {
			log.Fatal(err)
		}
		workers = append(workers, cw)
		backend := listen(cw.Handler(), fmt.Sprintf("kv cache worker %d", i))
		// Each worker sits behind a fault-injection proxy so act two can
		// wedge one without touching the worker itself.
		p := distserve.NewFaultProxy(backend)
		proxies = append(proxies, p)
		workerURLs = append(workerURLs, listen(p.Handler(), fmt.Sprintf("  fault proxy %d", i)))
	}

	frontend, err := distserve.NewFrontend(distserve.FrontendConfig{
		Dataset:      ds,
		Variant:      ranking.VariantBase,
		MetaURL:      metaURL,
		CacheWorkers: workerURLs,
		Transfer: distserve.TransferConfig{
			Timeout:          300 * time.Millisecond,
			MaxRetries:       1,
			BreakerThreshold: 3,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	frontURL := listen(frontend.Handler(), "inference frontend")

	// Act one — two users retrieve the same candidates: the second request's
	// item caches arrive over HTTP from the cache workers.
	cands := []int{3, 17, 42, 55, 68, 71, 90, 104, 120, 133, 150, 162}
	for _, user := range []int{5, 19} {
		out := rank(frontURL, user, cands)
		fmt.Printf("\nuser %d: top-5 %v via %s (reused %d, computed %d tokens)\n",
			user, out.Ranking[:5], out.Prefix, out.ReusedTokens, out.ComputedTokens)
	}

	total := 0
	for i, w := range workers {
		st := w.Stats()
		total += st.Entries
		fmt.Printf("worker %d holds %d KV payloads (%d B), %d hits\n", i, st.Entries, st.UsedBytes, st.Hits)
	}
	fmt.Printf("\n%d item prefixes live in the disaggregated pool; the second user's\n", total)
	fmt.Println("request fetched them over the network instead of recomputing.")

	// Act two — wedge worker 0: it accepts connections but never replies.
	// The transfer engine's per-attempt timeout and circuit breaker keep the
	// request bounded; missing caches are recomputed.
	fmt.Println("\n--- wedging cache worker 0 (accepts connections, never replies) ---")
	proxies[0].SetMode(distserve.FaultHang, 0)
	start := time.Now()
	out := rank(frontURL, 33, cands)
	fmt.Printf("user 33: top-5 %v in %v (reused %d, computed %d tokens)\n",
		out.Ranking[:5], time.Since(start).Round(time.Millisecond), out.ReusedTokens, out.ComputedTokens)
	proxies[0].Release()

	st := frontend.Stats()
	fmt.Printf("\nfrontend health: %d fetch errors, %d failovers, %d stale unregisters\n",
		st.FetchErrors, st.Failovers, st.StaleUnregisters)
	for _, w := range st.Workers {
		fmt.Printf("  %-9s breaker=%-9s requests=%-3d errors=%-3d skips=%-3d avg=%.1fms\n",
			w.Target, w.Breaker, w.Requests, w.Errors, w.BreakerSkips, w.AvgLatencyMs)
	}
	fmt.Println("\nthe wedged worker cost one timeout budget, not an unbounded hang;")
	fmt.Println("its breaker now short-circuits further transfers until it heals.")
}
