// Distserve: assemble Figure 3's disaggregated architecture in one process
// — a cache meta service, three KV cache workers, and an inference frontend,
// each behind a real HTTP listener — then serve requests whose KV payloads
// travel over the wire between components.
//
// Act two wedges a cache worker through a fault-injection proxy: the
// frontend's transfer engine times the worker out, trips its circuit
// breaker, and degrades to recompute with bounded latency instead of
// hanging the request.
//
// Act three kills a worker outright and lets the poolguard self-heal the
// pool: the death is detected by health probes, the dead worker's meta
// bindings are bulk-purged, its hottest entries are re-replicated onto the
// survivors, and the worker rejoins cleanly once revived. A tight Deadline-Ms
// budget then shows the overload ladder serving a degraded retrieval-only
// response instead of blowing the deadline.
//
// Act five stands a second frontend over the same KV pool and puts the
// routing tier in front of both: the router scores every request across the
// replicas, then one frontend is killed mid-load — the router fails the
// in-flight attempt over to the survivor, marks the dead replica, and shifts
// all routing mass without a single failed rank.
//
//	go run ./examples/distserve
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"time"

	"bat/internal/admission"
	"bat/internal/distserve"
	"bat/internal/ranking"
	"bat/internal/routing"
)

func listen(h http.Handler, what string) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, h); err != nil {
			log.Printf("%s: %v", what, err)
		}
	}()
	url := "http://" + ln.Addr().String()
	fmt.Printf("%-22s %s\n", what, url)
	return url
}

func rank(frontURL string, user int, cands []int) distserve.RankResponse {
	body, err := json.Marshal(distserve.RankRequest{UserID: user, CandidateIDs: cands})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(frontURL+"/v1/rank", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out distserve.RankResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return out
}

// rankDeadline is rank with a Deadline-Ms budget attached; it reports the
// status code and shed reason so the overload ladder's outcome is visible.
func rankDeadline(frontURL string, user int, cands []int, budgetMs int) (int, string, *distserve.RankResponse) {
	body, err := json.Marshal(distserve.RankRequest{UserID: user, CandidateIDs: cands})
	if err != nil {
		log.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, frontURL+"/v1/rank", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(admission.DeadlineHeader, strconv.Itoa(budgetMs))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, resp.Header.Get(admission.ShedReasonHeader), nil
	}
	var out distserve.RankResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return resp.StatusCode, "", &out
}

func main() {
	ds, err := ranking.NewDataset(ranking.DatasetConfig{
		Name: "dist", Items: 300, Users: 80, Clusters: 6, LatentDim: 8,
		HistoryMin: 8, HistoryMax: 24, ItemAttrTokens: 2,
		ClusterNoise: 0.15, Candidates: 30, HardNegatives: 5, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	meta := distserve.NewMetaServer(300, nil)
	metaURL := listen(meta.Handler(), "cache meta service")

	var workers []*distserve.CacheWorker
	var proxies []*distserve.FaultProxy
	var workerURLs []string
	for i := 0; i < 3; i++ {
		cw, err := distserve.NewCacheWorker(64 << 20)
		if err != nil {
			log.Fatal(err)
		}
		workers = append(workers, cw)
		backend := listen(cw.Handler(), fmt.Sprintf("kv cache worker %d", i))
		// Each worker sits behind a fault-injection proxy so act two can
		// wedge one without touching the worker itself.
		p := distserve.NewFaultProxy(backend)
		proxies = append(proxies, p)
		workerURLs = append(workerURLs, listen(p.Handler(), fmt.Sprintf("  fault proxy %d", i)))
	}

	frontend, err := distserve.NewFrontend(distserve.FrontendConfig{
		Dataset:      ds,
		Variant:      ranking.VariantBase,
		MetaURL:      metaURL,
		CacheWorkers: workerURLs,
		// Every committed cache lands on two workers, so acts two and three
		// cost failovers, not recomputes, and act four can empty a worker.
		Replication: 2,
		Transfer: distserve.TransferConfig{
			Timeout:          300 * time.Millisecond,
			MaxRetries:       1,
			BreakerThreshold: 3,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	frontURL := listen(frontend.Handler(), "inference frontend")

	// Act one — two users retrieve the same candidates: the second request's
	// item caches arrive over HTTP from the cache workers.
	cands := []int{3, 17, 42, 55, 68, 71, 90, 104, 120, 133, 150, 162}
	for _, user := range []int{5, 19} {
		out := rank(frontURL, user, cands)
		fmt.Printf("\nuser %d: top-5 %v via %s (reused %d, computed %d tokens)\n",
			user, out.Ranking[:5], out.Prefix, out.ReusedTokens, out.ComputedTokens)
	}

	total := 0
	for i, w := range workers {
		st := w.Stats()
		total += st.Entries
		fmt.Printf("worker %d holds %d KV payloads (%d B), %d hits\n", i, st.Entries, st.UsedBytes, st.Hits)
	}
	fmt.Printf("\n%d item prefixes live in the disaggregated pool; the second user's\n", total)
	fmt.Println("request fetched them over the network instead of recomputing.")

	// Act two — wedge worker 0: it accepts connections but never replies.
	// The transfer engine's per-attempt timeout and circuit breaker keep the
	// request bounded; missing caches are recomputed.
	fmt.Println("\n--- wedging cache worker 0 (accepts connections, never replies) ---")
	proxies[0].SetMode(distserve.FaultHang, 0)
	start := time.Now()
	out := rank(frontURL, 33, cands)
	fmt.Printf("user 33: top-5 %v in %v (reused %d, computed %d tokens)\n",
		out.Ranking[:5], time.Since(start).Round(time.Millisecond), out.ReusedTokens, out.ComputedTokens)
	proxies[0].Release()

	st := frontend.Stats()
	fmt.Printf("\nfrontend health: %d fetch errors, %d failovers, %d stale unregisters\n",
		st.FetchErrors, st.Failovers, st.StaleUnregisters)
	for _, w := range st.Workers {
		fmt.Printf("  %-9s breaker=%-9s requests=%-3d errors=%-3d skips=%-3d avg=%.1fms\n",
			w.Target, w.Breaker, w.Requests, w.Errors, w.BreakerSkips, w.AvgLatencyMs)
	}
	fmt.Println("\nthe wedged worker cost one timeout budget, not an unbounded hang;")
	fmt.Println("its breaker now short-circuits further transfers until it heals.")

	// Act three — kill worker 1 outright. The poolguard's health probes detect
	// the death, bulk-purge its meta bindings, and re-replicate its hottest
	// entries onto the survivors; when the worker comes back, it rejoins and
	// writes route home again.
	fmt.Println("\n--- killing cache worker 1 (500 on every request); poolguard heals ---")
	guard := distserve.NewPoolGuard(frontend, distserve.PoolGuardConfig{
		ProbeInterval: 50 * time.Millisecond,
		FailThreshold: 2,
		RepairHot:     8,
	})
	guard.Start()
	defer guard.Stop()

	proxies[1].SetMode(distserve.FaultError, 0)
	waitGuard := func(what string, ok func(distserve.PoolGuardStats) bool) {
		for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
			if ok(guard.Stats()) {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		log.Fatalf("poolguard never observed %s", what)
	}
	waitGuard("the death", func(gs distserve.PoolGuardStats) bool { return gs.Deaths >= 1 })

	out = rank(frontURL, 41, cands)
	fmt.Printf("user 41 during the outage: top-5 %v (reused %d, computed %d tokens)\n",
		out.Ranking[:5], out.ReusedTokens, out.ComputedTokens)
	st = frontend.Stats()
	if st.Guard != nil {
		fmt.Printf("poolguard: %d deaths, %d hot entries re-replicated, %d bindings purged in %d bulk purges\n",
			st.Guard.Deaths, st.Guard.Repaired, st.PurgedBindings, st.WorkerPurges)
	}

	proxies[1].SetMode(distserve.FaultNone, 0)
	waitGuard("the rejoin", func(gs distserve.PoolGuardStats) bool { return gs.Rejoins >= 1 })
	fmt.Println("worker 1 answered a probe again: rejoined, writes route back to it.")

	// Finale — the overload ladder's deadline rung. Calibrate the cost model
	// on a deliberately slow round (40 ms injected per transfer), then ask for
	// an answer inside 25 ms: the frontend knows a full forward cannot fit and
	// serves first-stage retrieval instead of blowing the budget.
	for _, p := range proxies {
		p.SetMode(distserve.FaultDelay, 40*time.Millisecond)
	}
	rank(frontURL, 7, cands) // full serve at real (slow) latency calibrates the estimator
	for _, p := range proxies {
		p.SetMode(distserve.FaultNone, 0)
	}
	status, reason, dresp := rankDeadline(frontURL, 7, cands, 25)
	switch {
	case dresp != nil && dresp.Degraded:
		fmt.Printf("\n25ms budget: degraded retrieval-only answer (reason %q), top-5 %v\n",
			dresp.DegradeReason, dresp.Ranking[:5])
	case dresp != nil:
		fmt.Printf("\n25ms budget: full serve fit anyway, top-5 %v\n", dresp.Ranking[:5])
	default:
		fmt.Printf("\n25ms budget: shed with %d (reason %q) — better than a blown deadline\n", status, reason)
	}
	st = frontend.Stats()
	fmt.Printf("ladder totals: %d served, %d degraded, %d shed, calibrated cost ratio %.1f\n",
		st.Requests, st.DegradedRequests, st.Admission.ShedQueueFull+st.Admission.ShedDeadline,
		st.CalibratedCostRatio)

	// Act four — graceful drain: worker 2 streams its entries to its peers
	// (placed by the frontend's own replica walk), registers the moves in
	// meta, and deregisters itself. A planned restart loses nothing: the next
	// request still reuses the pool, now without worker 2.
	fmt.Println("\n--- draining cache worker 2 (planned restart, zero loss) ---")
	before := workers[2].Stats().Entries
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	dr, err := frontend.DrainWorker(ctx, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worker 2 drained: %d entries held, %d moved (%d replica copies, %d B), %d skipped\n",
		before, dr.Moved, dr.Copies, dr.Bytes, dr.Skipped)
	// Let the breakers tripped during the chaos acts cool down and half-open
	// probe back to closed (each rank feeds the probes), then measure one
	// steady-state request: full reuse from the moved replicas, no errors.
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(250 * time.Millisecond) {
		rank(frontURL, 19, cands)
		open := false
		for _, w := range frontend.Stats().Workers {
			if w.Breaker != "closed" {
				open = true
			}
		}
		if !open {
			break
		}
	}
	misses := frontend.Stats().FetchErrors
	out2 := rank(frontURL, 19, cands)
	fmt.Printf("user 19 after the drain: top-5 %v (reused %d tokens, %d new fetch errors)\n",
		out2.Ranking[:5], out2.ReusedTokens, frontend.Stats().FetchErrors-misses)
	for i, w := range workers {
		fmt.Printf("worker %d now holds %d entries (draining=%v)\n", i, w.Stats().Entries, w.Stats().Draining)
	}

	// Act five — the sharded frontend tier. A second frontend replica attaches
	// to the same meta service and KV pool, and the routing tier goes in
	// front of both: cluster admission, scored routing (cache affinity,
	// least-loaded, round-robin), failover on frontend death.
	fmt.Println("\n--- routing tier over two frontends; killing one mid-load ---")
	frontB, err := distserve.NewFrontend(distserve.FrontendConfig{
		Dataset:      ds,
		Variant:      ranking.VariantBase,
		MetaURL:      metaURL,
		CacheWorkers: workerURLs,
		Replication:  2,
		Transfer: distserve.TransferConfig{
			Timeout:          300 * time.Millisecond,
			MaxRetries:       1,
			BreakerThreshold: 3,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srvB := &http.Server{Handler: frontB.Handler()}
	go srvB.Serve(lnB)
	frontBURL := "http://" + lnB.Addr().String()
	fmt.Printf("%-22s %s\n", "frontend replica B", frontBURL)

	router, err := routing.NewRouter(routing.RouterConfig{
		Frontends:    []string{frontURL, frontBURL},
		PollInterval: 100 * time.Millisecond,
		FailAfter:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer router.Close()
	routerURL := listen(router.Handler(), "request router")

	served, failed := 0, 0
	for i := 0; i < 24; i++ {
		if i == 8 {
			// Kill replica B outright — listener and live connections both —
			// so the next attempt routed there hits a transport error and
			// must fail over to the survivor.
			srvB.Close()
			fmt.Println("frontend replica B killed after 8 requests")
		}
		out := rank(routerURL, 20+i%6, cands)
		if len(out.Ranking) == 0 {
			failed++
			continue
		}
		served++
	}
	rst := router.Stats()
	fmt.Printf("served %d/%d ranks across the kill (%d failed), %d failovers\n",
		served, served+failed, failed, rst.Failovers)
	for _, fs := range rst.Frontends {
		fmt.Printf("  %-28s alive=%-5v load=%.2f resident_users=%d\n",
			fs.URL, fs.Alive, fs.Load, fs.ResidentUsers)
	}
	fmt.Printf("scorer decisions: %v\n", rst.Decisions)
	if failed > 0 {
		log.Fatalf("%d ranks failed across the frontend kill", failed)
	}
	fmt.Println("\nthe dead replica cost zero failed ranks: the router retried the")
	fmt.Println("in-flight attempt on the survivor and shifted all routing mass to it.")
}
