// Clustersim: serve the Books workload on a simulated 4-node cluster with
// each of the paper's four systems and compare throughput, hit rate, and
// compute savings — a single Figure 5/6 cell, end to end.
//
//	go run ./examples/clustersim
package main

import (
	"fmt"
	"log"

	"bat/internal/core"
	"bat/internal/workload"
)

func main() {
	const requests = 6000
	fmt.Printf("workload: %s (%d users, %d items), 4 nodes, Qwen2-1.5B cost model\n\n",
		workload.Books.Name, workload.Books.Users, workload.Books.Items)
	fmt.Printf("%-6s %-8s %-9s %-9s %-18s %-14s\n",
		"System", "QPS", "HitRate", "Savings", "Prefix(UP/IP/RE)", "UserCacheHits")
	for _, sys := range core.Systems() {
		d, err := core.Build(sys, core.Options{
			Profile:      workload.Books,
			Nodes:        4,
			HostMemBytes: 12 << 30,
			Seed:         11,
		})
		if err != nil {
			log.Fatal(err)
		}
		st, err := d.RunThroughput(requests, 3600)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %-8.1f %-9s %-9s %-18s %-14s\n",
			sys, st.QPS,
			fmt.Sprintf("%.1f%%", st.HitRate()*100),
			fmt.Sprintf("%.1f%%", st.ComputeSavings()*100),
			fmt.Sprintf("%d/%d/%d", st.UserPrefixCount, st.ItemPrefixCount, st.RecomputeCount),
			fmt.Sprintf("%d/%d", st.UserHits, st.UserLookups))
	}
	fmt.Println("\nBAT mixes both attention patterns per request and leads every baseline;")
	fmt.Println("IP beats UP on Books because most users are too inactive for profile caching.")
}
